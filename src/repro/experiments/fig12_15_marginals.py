"""Figures 12-15: PrivBayes vs the marginal-release baselines on Q_α.

NLTCS/ACS (Figures 12-13) compare against Laplace, Fourier, Contingency,
MWEM and Uniform; Adult/BR2000 (Figures 14-15) drop Contingency and MWEM,
whose cost is proportional to the full domain size (Section 6.1).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.baselines import (
    ContingencyMarginals,
    FourierMarginals,
    LaplaceMarginals,
    MWEM,
    UniformMarginals,
)
from repro.core.privbayes import DEFAULT_BETA, DEFAULT_THETA
from repro.core.scoring import ScoringCache
from repro.datasets import load_dataset
from repro.experiments.framework import (
    EPSILONS,
    ExperimentResult,
    stable_series_seed,
    subsample_workload,
)
from repro.experiments.sweep_common import private_release
from repro.workloads import (
    all_alpha_marginals,
    average_variation_distance,
    synthetic_marginals,
)

_FULL_DOMAIN_DATASETS = {"nltcs", "acs"}


def run_marginals_comparison(
    dataset: str = "nltcs",
    alpha: int = 3,
    epsilons: Sequence[float] = EPSILONS,
    repeats: int = 3,
    n: Optional[int] = None,
    max_marginals: Optional[int] = None,
    include_full_domain_baselines: Optional[bool] = None,
    mwem_rounds: int = 40,
    beta: float = DEFAULT_BETA,
    theta: float = DEFAULT_THETA,
    seed: int = 0,
) -> ExperimentResult:
    """Reproduce one panel of Figures 12-15."""
    table = load_dataset(dataset, n=n, seed=seed)
    # The task is answering ALL of Q_alpha: baselines must budget for the
    # full workload.  Scoring may use a subsample (an unbiased estimate of
    # the average TVD) to keep scaled runs tractable.
    full_workload = all_alpha_marginals(table, alpha)
    eval_workload = subsample_workload(full_workload, max_marginals, seed)
    if include_full_domain_baselines is None:
        include_full_domain_baselines = dataset in _FULL_DOMAIN_DATASETS
    is_binary = dataset in _FULL_DOMAIN_DATASETS
    # (baseline, workload it releases): MWEM optimizes for the query set it
    # is handed; giving it only the scored subsample can only favour it.
    baselines = [
        (LaplaceMarginals(), full_workload),
        (FourierMarginals(), full_workload),
    ]
    if include_full_domain_baselines:
        baselines += [
            (ContingencyMarginals(), eval_workload),
            (MWEM(max_rounds=mwem_rounds), eval_workload),
        ]
    baselines.append((UniformMarginals(), eval_workload))

    result = ExperimentResult(
        experiment=f"fig12-15-{dataset}-Q{alpha}",
        title=f"Q{alpha} marginals on {dataset} vs baselines",
        x_label="epsilon",
        y_label="average variation distance",
        x=list(epsilons),
    )
    scoring = ScoringCache()  # shared across the ε grid and repeats
    privbayes_values = []
    for eps_idx, epsilon in enumerate(epsilons):
        metrics = []
        for r in range(repeats):
            rng = np.random.default_rng(seed * 7919 + eps_idx * 101 + r)
            synthetic = private_release(
                table, epsilon, beta, theta, is_binary, rng,
                scoring_cache=scoring,
            )
            released = synthetic_marginals(synthetic, eval_workload)
            metrics.append(
                average_variation_distance(table, released, eval_workload)
            )
        privbayes_values.append(float(np.mean(metrics)))
    result.add("PrivBayes", privbayes_values)

    for baseline, release_workload in baselines:
        values = []
        for eps_idx, epsilon in enumerate(epsilons):
            metrics = []
            for r in range(repeats):
                # stable_series_seed, not hash(): hash() is salted per
                # process under PYTHONHASHSEED randomization, which made the
                # baseline series drift run-to-run while PrivBayes rows
                # stayed bit-stable.
                rng = np.random.default_rng(
                    seed * 6271 + eps_idx * 101 + r
                    + stable_series_seed(baseline.name)
                )
                released = baseline.release(
                    table, release_workload, epsilon, rng
                )
                metrics.append(
                    average_variation_distance(table, released, eval_workload)
                )
            values.append(float(np.mean(metrics)))
        result.add(baseline.name, values)
    return result
