"""Figures 12-15: PrivBayes vs the marginal-release baselines on Q_α.

NLTCS/ACS (Figures 12-13) compare against Laplace, Fourier, Contingency,
MWEM and Uniform; Adult/BR2000 (Figures 14-15) drop Contingency and MWEM,
whose cost is proportional to the full domain size (Section 6.1).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.baselines import (
    ContingencyMarginals,
    FourierMarginals,
    LaplaceMarginals,
    MWEM,
    UniformMarginals,
)
from repro.core.privbayes import DEFAULT_BETA, DEFAULT_THETA
from repro.core.scoring import ScoringCache
from repro.datasets import load_dataset
from repro.experiments.framework import (
    EPSILONS,
    ExperimentResult,
    subsample_workload,
)
from repro.experiments.parallel import (
    SweepCell,
    cell_seed,
    get_worker_state,
    mean_reduce,
    run_cells,
)
from repro.experiments.sweep_common import private_release
from repro.workloads import (
    all_alpha_marginals,
    average_variation_distance,
    synthetic_marginals,
)

_FULL_DOMAIN_DATASETS = {"nltcs", "acs"}

#: Worker-state key for the panel fixtures (fork-inherited by the pool).
_STATE_KEY = "fig12_15.state"


def _marginals_cell(cell: SweepCell) -> float:
    """One cell: release by the cell's series, score average TVD.

    ``series == "PrivBayes"`` runs the pipeline with the panel's shared
    :class:`~repro.core.scoring.ScoringCache`; any other series releases
    through the named baseline on the workload it was budgeted for.
    """
    state = get_worker_state(_STATE_KEY)
    rng = cell.rng()
    if cell.series == "PrivBayes":
        synthetic = private_release(
            state["table"],
            cell.epsilon,
            state["beta"],
            state["theta"],
            state["is_binary"],
            rng,
            scoring_cache=state["scoring"],
        )
        released = synthetic_marginals(synthetic, state["eval_workload"])
    else:
        baseline, release_workload = state["baselines"][cell.series]
        released = baseline.release(
            state["table"], release_workload, cell.epsilon, rng
        )
    return average_variation_distance(
        state["table"], released, state["eval_workload"]
    )


def run_marginals_comparison(
    dataset: str = "nltcs",
    alpha: int = 3,
    epsilons: Sequence[float] = EPSILONS,
    repeats: int = 3,
    n: Optional[int] = None,
    max_marginals: Optional[int] = None,
    include_full_domain_baselines: Optional[bool] = None,
    mwem_rounds: int = 40,
    beta: float = DEFAULT_BETA,
    theta: float = DEFAULT_THETA,
    seed: int = 0,
    jobs: int = 1,
) -> ExperimentResult:
    """Reproduce one panel of Figures 12-15."""
    table = load_dataset(dataset, n=n, seed=seed)
    # The task is answering ALL of Q_alpha: baselines must budget for the
    # full workload.  Scoring may use a subsample (an unbiased estimate of
    # the average TVD) to keep scaled runs tractable.
    full_workload = all_alpha_marginals(table, alpha)
    eval_workload = subsample_workload(full_workload, max_marginals, seed)
    if include_full_domain_baselines is None:
        include_full_domain_baselines = dataset in _FULL_DOMAIN_DATASETS
    is_binary = dataset in _FULL_DOMAIN_DATASETS
    # (baseline, workload it releases): MWEM optimizes for the query set it
    # is handed; giving it only the scored subsample can only favour it.
    baselines = [
        (LaplaceMarginals(), full_workload),
        (FourierMarginals(), full_workload),
    ]
    if include_full_domain_baselines:
        baselines += [
            (ContingencyMarginals(), eval_workload),
            (MWEM(max_rounds=mwem_rounds), eval_workload),
        ]
    baselines.append((UniformMarginals(), eval_workload))

    result = ExperimentResult(
        experiment=f"fig12-15-{dataset}-Q{alpha}",
        title=f"Q{alpha} marginals on {dataset} vs baselines",
        x_label="epsilon",
        y_label="average variation distance",
        x=list(epsilons),
    )
    scoring = ScoringCache()  # shared across the ε grid and repeats
    state = {
        "table": table,
        "eval_workload": eval_workload,
        "baselines": {b.name: (b, w) for b, w in baselines},
        "beta": beta,
        "theta": theta,
        "is_binary": is_binary,
        "scoring": scoring,
    }
    # Baseline cells derive their seeds through the series-name offset
    # (cell_seed adds stable_series_seed, not hash(): hash() is salted per
    # process under PYTHONHASHSEED randomization, which once made the
    # baseline series drift run-to-run while PrivBayes rows stayed
    # bit-stable).
    series_names = ["PrivBayes"] + [b.name for b, _ in baselines]
    cells = [
        SweepCell(
            dataset,
            epsilon,
            r,
            cell_seed(
                seed * (7919 if name == "PrivBayes" else 6271),
                eps_idx * 101 + r,
                series="" if name == "PrivBayes" else name,
            ),
            series=name,
        )
        for name in series_names
        for eps_idx, epsilon in enumerate(epsilons)
        for r in range(repeats)
    ]
    metrics = run_cells(_STATE_KEY, state, _marginals_cell, cells, jobs)
    means = mean_reduce(metrics, repeats)
    for s_idx, name in enumerate(series_names):
        result.add(
            name, means[s_idx * len(epsilons) : (s_idx + 1) * len(epsilons)]
        )
    return result
