"""Deterministic sweep execution: serial or process-pool, identical output.

The figure sweeps (9-19) are grids of independent (dataset, ε, repeat)
cells — each cell fits one release (or one baseline) from its own freshly
seeded RNG and reduces to one float.  That independence is what makes the
sweeps embarrassingly parallel, but naive pooling breaks two invariants
the benchmark transcripts rely on:

* **Seed stability.**  A cell's RNG must not depend on which worker runs
  it or in what order cells complete.  Every :class:`SweepCell` therefore
  carries an explicit ``seed`` computed by :func:`cell_seed` — a pure
  function of the sweep's base seed, the cell's position in the grid and
  (for named baseline streams) :func:`~repro.experiments.framework.
  stable_series_seed` of the series name.  Nothing in the derivation
  touches ``hash()``, worker ids or wall clock.
* **Reduction order.**  Metrics are gathered in submission order (future
  per cell, resolved in sequence), so the per-point means consume their
  repeat values in exactly the order the serial loop would.

With both pinned, ``jobs=N`` is bit-identical to ``jobs=1`` for every
worker count and scheduling interleaving, and ``jobs=1`` runs the plain
in-process loop (no pool, no pickling — exactly the pre-existing path).

Cache sharing
-------------
Workers are forked (POSIX ``fork`` start method), so they inherit the
parent's memory copy-on-write — including the per-dataset
:class:`~repro.core.scoring.ScoringCache` of the sweep context and any
module-level worker state registered via :func:`set_worker_state`.  To
make that inheritance useful, :meth:`SweepExecutor.map` runs the *first*
cell in the parent before forking: one release fully warms the candidate
score memo and the joint-count cache (they are data statistics, identical
for every cell of the sweep), so every worker starts with the warm caches
instead of re-deriving them per process.  On platforms without ``fork``
the executor degrades to the serial path — same results, no sharing.

Worker functions must be module-level (pickled by reference); their
inputs arrive as a picklable :class:`SweepCell` and their shared state
through :func:`get_worker_state`, set by the harness before ``map``.
"""

from __future__ import annotations

import multiprocessing
import sys
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.experiments.framework import mean_over_repeats, stable_series_seed


@dataclass(frozen=True)
class SweepCell:
    """One independent unit of a figure sweep.

    ``seed`` is the cell's entire source of randomness (see
    :func:`cell_seed`); ``series`` names the figure line the cell belongs
    to (used by workers that dispatch on baseline); ``params`` carries the
    swept knobs (β, θ, oracle switches) as a hashable, picklable tuple.
    """

    dataset: str
    epsilon: float
    repeat: int
    seed: int
    series: str = ""
    params: Tuple[Tuple[str, object], ...] = ()

    def param(self, name: str, default=None):
        for key, value in self.params:
            if key == name:
                return value
        return default

    def rng(self) -> np.random.Generator:
        """The cell's RNG — fresh per call, a pure function of ``seed``."""
        return np.random.default_rng(self.seed)


def cell_seed(base_seed: int, index: int, series: str = "") -> int:
    """Per-cell RNG seed: a pure function of (series name, cell index).

    ``base_seed`` is the sweep's seed times a per-figure prime (keeping the
    exact derivations the committed benchmark transcripts were generated
    under), ``index`` linearizes the cell's grid position, and ``series``
    adds the CRC32-based
    :func:`~repro.experiments.framework.stable_series_seed` offset that
    separates named baseline streams (the default ``""`` hashes to 0 — no
    offset).  No ``hash()``, no process state: the same arguments yield
    the same seed in every interpreter, under every ``PYTHONHASHSEED``,
    for every worker count.
    """
    return base_seed + index + stable_series_seed(series)


#: Module-level state inherited by forked workers (set before ``map``).
_WORKER_STATE: Dict[str, object] = {}


def set_worker_state(key: str, value) -> None:
    """Register shared state a worker function will read under ``key``.

    Must be called in the parent before :meth:`SweepExecutor.map` so the
    forked pool inherits the value; the state never crosses a pickle
    boundary, so it may hold tables, workloads and caches of any size.
    """
    _WORKER_STATE[key] = value


def get_worker_state(key: str):
    """Fetch state registered by :func:`set_worker_state` (parent or fork)."""
    try:
        return _WORKER_STATE[key]
    except KeyError:
        raise RuntimeError(
            f"worker state {key!r} not set — call set_worker_state() before "
            f"SweepExecutor.map() (spawn-based pools cannot inherit it)"
        ) from None


def clear_worker_state(key: str) -> None:
    """Drop the state registered under ``key`` (idempotent).

    Harnesses call this once their sweep completes so a batch driver
    (``run_all`` runs dozens of panels in one process) does not keep every
    panel's tables, workloads and caches alive until exit.
    """
    _WORKER_STATE.pop(key, None)


def _fork_context() -> Optional[multiprocessing.context.BaseContext]:
    """The ``fork`` multiprocessing context, or ``None`` if unsupported.

    macOS advertises ``fork`` but forking after the Objective-C runtime /
    Accelerate BLAS have initialized can abort the child (the reason
    CPython's default start method there is ``spawn``), and numpy BLAS
    calls run inside every worker — treat it like the no-fork case.
    """
    if sys.platform == "darwin":
        return None
    if "fork" not in multiprocessing.get_all_start_methods():
        return None
    return multiprocessing.get_context("fork")


class SweepExecutor:
    """Maps a cell-level function over sweep cells, serially or pooled.

    ``jobs=1`` (the default) runs the plain list comprehension — byte for
    byte the pre-existing serial code path.  ``jobs>1`` warms the caches
    on the first cell in the parent, then forks a ``ProcessPoolExecutor``
    over the rest; results always come back in submission order, so the
    output is identical for every ``jobs`` value.
    """

    def __init__(self, jobs: int = 1) -> None:
        if int(jobs) != jobs or jobs < 1:
            raise ValueError(f"jobs must be a positive integer, got {jobs!r}")
        self.jobs = int(jobs)

    def map(self, fn: Callable[[SweepCell], float], cells: Iterable[SweepCell]) -> List:
        cells = list(cells)
        if self.jobs == 1 or len(cells) <= 1:
            return [fn(cell) for cell in cells]
        context = _fork_context()
        if context is None:  # pragma: no cover - non-POSIX platforms
            warnings.warn(
                "SweepExecutor: no fork start method on this platform; "
                "running serially (results are identical)",
                RuntimeWarning,
                stacklevel=2,
            )
            return [fn(cell) for cell in cells]
        # Warm the fork-inherited caches (candidate scores, joint counts —
        # data statistics shared by every cell) on the first cell, so each
        # worker starts from the warm memo instead of rebuilding its own.
        first = fn(cells[0])
        rest = cells[1:]
        workers = min(self.jobs, len(rest))
        with ProcessPoolExecutor(max_workers=workers, mp_context=context) as pool:
            futures = [pool.submit(fn, cell) for cell in rest]
            return [first] + [future.result() for future in futures]


def run_cells(
    state_key: str,
    state,
    fn: Callable[[SweepCell], float],
    cells: Iterable[SweepCell],
    jobs: int = 1,
) -> List:
    """Install worker state, map ``fn`` over ``cells``, always clean up.

    The install/map/clear dance every harness needs, in one place: the
    state is registered under ``state_key`` before the pool forks and
    dropped in a ``finally`` so batch drivers (``run_all`` runs dozens of
    panels per process) never accumulate dead panel fixtures.
    """
    set_worker_state(state_key, state)
    try:
        return SweepExecutor(jobs).map(fn, cells)
    finally:
        clear_worker_state(state_key)


def mean_reduce(metrics: Sequence[float], repeats: int) -> List[float]:
    """Collapse a repeat-major flat metric list to per-point means.

    ``metrics`` must hold ``repeats`` consecutive values per grid point
    (the cell enumeration order of every figure harness); each group
    reduces through :func:`~repro.experiments.framework.mean_over_repeats`
    in submission order, matching the serial loops' ``np.mean`` exactly.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be positive, got {repeats!r}")
    if len(metrics) % repeats != 0:
        raise ValueError(
            f"{len(metrics)} metrics do not divide into groups of {repeats}"
        )
    return [
        mean_over_repeats(metrics[i : i + repeats])
        for i in range(0, len(metrics), repeats)
    ]
