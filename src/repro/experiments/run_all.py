"""Run the full experiment battery and write a consolidated report.

``python -m repro.experiments.run_all --scale fast --out results/`` runs
every figure panel at the chosen scale, saves one JSON per panel plus a
plain-text report with all rendered series.  The ``paper`` scale uses the
full ε grid and default dataset sizes (hours, like the original study);
``fast`` finishes in minutes.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Tuple

from repro.experiments.framework import (
    EPSILONS,
    FAST_EPSILONS,
    ExperimentResult,
    render_result,
)
from repro.experiments.table5 import render_table5, run_table5
from repro.experiments.fig4_scores import run_fig4
from repro.experiments.fig5_6_encodings_marginals import run_encoding_marginals
from repro.experiments.fig7_8_encodings_svm import run_encoding_svm
from repro.experiments.fig9_beta import run_beta_sweep
from repro.experiments.fig10_theta import run_theta_sweep
from repro.experiments.fig11_error_source import run_error_source
from repro.experiments.fig12_15_marginals import run_marginals_comparison
from repro.experiments.fig16_19_svm import run_svm_comparison

#: Scale presets: (n, repeats, epsilons, max_marginals).
SCALES = {
    "fast": dict(n=2000, repeats=2, epsilons=FAST_EPSILONS, max_marginals=20),
    "medium": dict(n=8000, repeats=3, epsilons=EPSILONS, max_marginals=60),
    "paper": dict(n=None, repeats=10, epsilons=EPSILONS, max_marginals=None),
}


def battery(
    scale: Dict, jobs: int = 1
) -> List[Tuple[str, Callable[[], ExperimentResult]]]:
    """The full panel list, bound to one scale preset.

    ``jobs`` fans each sweep panel's (ε, repeat) cells across that many
    forked workers (figures 9-19; see
    :mod:`repro.experiments.parallel`) — output is bit-identical to
    ``jobs=1`` for every worker count.
    """
    n = scale["n"]
    repeats = scale["repeats"]
    epsilons = scale["epsilons"]
    cap = scale["max_marginals"]
    panels: List[Tuple[str, Callable[[], ExperimentResult]]] = []

    for dataset in ("nltcs", "acs", "adult", "br2000"):
        panels.append(
            (
                f"fig4-{dataset}",
                lambda d=dataset: run_fig4(
                    dataset=d, epsilons=epsilons, repeats=repeats, n=n
                ),
            )
        )
    for dataset, alphas in (("adult", (2, 3)), ("br2000", (2, 3))):
        for alpha in alphas:
            panels.append(
                (
                    f"fig5/6-{dataset}-Q{alpha}",
                    lambda d=dataset, a=alpha: run_encoding_marginals(
                        dataset=d, alpha=a, epsilons=epsilons,
                        repeats=repeats, n=n, max_marginals=cap,
                    ),
                )
            )
        for task in range(4):
            panels.append(
                (
                    f"fig7/8-{dataset}-task{task}",
                    lambda d=dataset, t=task: run_encoding_svm(
                        dataset=d, task_index=t, epsilons=epsilons,
                        repeats=repeats, n=n,
                    ),
                )
            )
    for dataset in ("nltcs", "acs", "adult", "br2000"):
        for kind in ("count", "svm"):
            panels.append(
                (
                    f"fig9-{dataset}-{kind}",
                    lambda d=dataset, k=kind: run_beta_sweep(
                        dataset=d, kind=k, epsilons=epsilons,
                        repeats=repeats, n=n, max_marginals=cap, jobs=jobs,
                    ),
                )
            )
            panels.append(
                (
                    f"fig10-{dataset}-{kind}",
                    lambda d=dataset, k=kind: run_theta_sweep(
                        dataset=d, kind=k, epsilons=epsilons,
                        repeats=repeats, n=n, max_marginals=cap, jobs=jobs,
                    ),
                )
            )
            panels.append(
                (
                    f"fig11-{dataset}-{kind}",
                    lambda d=dataset, k=kind: run_error_source(
                        dataset=d, kind=k, epsilons=epsilons,
                        repeats=repeats, n=n, max_marginals=cap, jobs=jobs,
                    ),
                )
            )
    for dataset, alphas in (
        ("nltcs", (3, 4)), ("acs", (3, 4)), ("adult", (2, 3)), ("br2000", (2, 3)),
    ):
        for alpha in alphas:
            panels.append(
                (
                    f"fig12-15-{dataset}-Q{alpha}",
                    lambda d=dataset, a=alpha: run_marginals_comparison(
                        dataset=d, alpha=a, epsilons=epsilons,
                        repeats=repeats, n=n, max_marginals=cap, jobs=jobs,
                    ),
                )
            )
    for dataset in ("nltcs", "acs", "adult", "br2000"):
        for task in range(4):
            panels.append(
                (
                    f"fig16-19-{dataset}-task{task}",
                    lambda d=dataset, t=task: run_svm_comparison(
                        dataset=d, task_index=t, epsilons=epsilons,
                        repeats=repeats, n=n, jobs=jobs,
                    ),
                )
            )
    return panels


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.run_all",
        description="Run the full Section 6 experiment battery.",
    )
    parser.add_argument("--scale", choices=sorted(SCALES), default="fast")
    parser.add_argument("--out", default="results")
    parser.add_argument(
        "--only", default=None, help="substring filter on panel names"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes per sweep panel (bit-identical to --jobs 1)",
    )
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error("--jobs must be a positive integer")
    scale = SCALES[args.scale]
    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)

    report_lines = [render_table5(run_table5(n=scale["n"])), ""]
    panels = battery(scale, jobs=args.jobs)
    if args.only:
        panels = [(name, fn) for name, fn in panels if args.only in name]
    print(f"running {len(panels)} panels at scale {args.scale!r}")
    for name, fn in panels:
        start = time.time()
        result = fn()
        elapsed = time.time() - start
        slug = name.replace("/", "_")
        (out_dir / f"{slug}.json").write_text(json.dumps(result.to_dict()))
        rendered = render_result(result)
        report_lines += [rendered, f"   ({elapsed:.1f}s)", ""]
        print(f"  {name:<28} done in {elapsed:6.1f}s")
    report = "\n".join(report_lines)
    (out_dir / "report.txt").write_text(report)
    print(f"report -> {out_dir / 'report.txt'}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
