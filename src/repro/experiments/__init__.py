"""Experiment harnesses: one module per paper figure/table (Section 6).

Every harness is a pure function from an :class:`ExperimentSpec`-style set
of keyword arguments to an :class:`ExperimentResult` whose series mirror
the lines of the corresponding figure.  ``python -m repro.experiments
<figure>`` runs one harness and prints the series; the benchmark suite
calls the same functions at reduced scale.
"""

from repro.experiments.framework import (
    EPSILONS,
    ExperimentResult,
    render_result,
    subsample_workload,
)
from repro.experiments.parallel import (
    SweepCell,
    SweepExecutor,
    cell_seed,
    mean_reduce,
)
from repro.experiments.plotting import render_chart
from repro.experiments.table5 import run_table5
from repro.experiments.fig4_scores import run_fig4
from repro.experiments.fig5_6_encodings_marginals import run_encoding_marginals
from repro.experiments.fig7_8_encodings_svm import run_encoding_svm
from repro.experiments.fig9_beta import run_beta_sweep
from repro.experiments.fig10_theta import run_theta_sweep
from repro.experiments.fig11_error_source import run_error_source
from repro.experiments.fig12_15_marginals import run_marginals_comparison
from repro.experiments.fig16_19_svm import run_svm_comparison

__all__ = [
    "EPSILONS",
    "ExperimentResult",
    "SweepCell",
    "SweepExecutor",
    "cell_seed",
    "mean_reduce",
    "render_result",
    "render_chart",
    "subsample_workload",
    "run_table5",
    "run_fig4",
    "run_encoding_marginals",
    "run_encoding_svm",
    "run_beta_sweep",
    "run_theta_sweep",
    "run_error_source",
    "run_marginals_comparison",
    "run_svm_comparison",
]
