"""Structured original-vs-synthetic utility reports.

A downstream user of released data wants a one-call answer to "what
survived?".  :func:`utility_report` compares a synthetic table to its
source across three layers:

* per attribute: total variation distance of the one-way marginal;
* per attribute pair: TVD of the two-way marginal, plus the mutual
  information in the original vs the synthetic data (did correlations
  survive?);
* overall: means of the above, the workload metric of the paper.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.data.marginals import joint_distribution
from repro.data.table import Table
from repro.infotheory.measures import (
    mutual_information_from_table,
    total_variation_distance,
)


@dataclass(frozen=True)
class AttributeReport:
    """One-way marginal comparison for a single attribute."""

    name: str
    tvd: float


@dataclass(frozen=True)
class PairReport:
    """Two-way marginal + correlation comparison for an attribute pair."""

    names: Tuple[str, str]
    tvd: float
    mi_original: float
    mi_synthetic: float

    @property
    def mi_retained(self) -> float:
        """Fraction of the original mutual information retained (clamped)."""
        if self.mi_original <= 1e-12:
            return 1.0
        return max(0.0, min(1.0, self.mi_synthetic / self.mi_original))


@dataclass(frozen=True)
class UtilityReport:
    """Full comparison of a synthetic release against its source."""

    attributes: Tuple[AttributeReport, ...]
    pairs: Tuple[PairReport, ...]

    @property
    def mean_attribute_tvd(self) -> float:
        return float(np.mean([a.tvd for a in self.attributes]))

    @property
    def mean_pair_tvd(self) -> float:
        if not self.pairs:
            return 0.0
        return float(np.mean([p.tvd for p in self.pairs]))

    @property
    def mean_mi_retained(self) -> float:
        if not self.pairs:
            return 1.0
        return float(np.mean([p.mi_retained for p in self.pairs]))

    def worst_attributes(self, limit: int = 5) -> List[AttributeReport]:
        return sorted(self.attributes, key=lambda a: -a.tvd)[:limit]

    def worst_pairs(self, limit: int = 5) -> List[PairReport]:
        return sorted(self.pairs, key=lambda p: -p.tvd)[:limit]

    def render(self) -> str:
        lines = [
            "utility report",
            f"  mean 1-way marginal TVD : {self.mean_attribute_tvd:.4f}",
            f"  mean 2-way marginal TVD : {self.mean_pair_tvd:.4f}",
            f"  mean MI retained        : {self.mean_mi_retained:.1%}",
            "  worst attributes:",
        ]
        for report in self.worst_attributes(3):
            lines.append(f"    {report.name:<24} TVD={report.tvd:.4f}")
        lines.append("  worst pairs:")
        for report in self.worst_pairs(3):
            label = " x ".join(report.names)
            lines.append(
                f"    {label:<32} TVD={report.tvd:.4f} "
                f"MI {report.mi_original:.3f} -> {report.mi_synthetic:.3f}"
            )
        return "\n".join(lines)


def utility_report(
    original: Table,
    synthetic: Table,
    max_pairs: Optional[int] = None,
    seed: int = 0,
) -> UtilityReport:
    """Compare a synthetic table against its source.

    Parameters
    ----------
    max_pairs:
        Optional cap on the number of attribute pairs compared (sampled
        deterministically), for wide tables.
    """
    if original.attribute_names != synthetic.attribute_names:
        raise ValueError("original and synthetic tables have different schemas")
    attribute_reports = []
    for name in original.attribute_names:
        tvd = total_variation_distance(
            joint_distribution(original, [name]),
            joint_distribution(synthetic, [name]),
        )
        attribute_reports.append(AttributeReport(name=name, tvd=tvd))
    all_pairs = list(itertools.combinations(original.attribute_names, 2))
    if max_pairs is not None and len(all_pairs) > max_pairs:
        rng = np.random.default_rng(seed)
        chosen = rng.choice(len(all_pairs), size=max_pairs, replace=False)
        all_pairs = [all_pairs[i] for i in sorted(chosen)]
    pair_reports = []
    for a, b in all_pairs:
        tvd = total_variation_distance(
            joint_distribution(original, [a, b]),
            joint_distribution(synthetic, [a, b]),
        )
        pair_reports.append(
            PairReport(
                names=(a, b),
                tvd=tvd,
                mi_original=mutual_information_from_table(original, b, [a]),
                mi_synthetic=mutual_information_from_table(synthetic, b, [a]),
            )
        )
    return UtilityReport(
        attributes=tuple(attribute_reports), pairs=tuple(pair_reports)
    )
