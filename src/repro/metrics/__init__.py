"""Utility reporting: how much signal survived a synthetic release."""

from repro.metrics.report import (
    AttributeReport,
    PairReport,
    UtilityReport,
    utility_report,
)

__all__ = ["utility_report", "UtilityReport", "AttributeReport", "PairReport"]
