"""Exact marginal inference on a (noisy) Bayesian model.

The paper's concluding remarks raise "whether certain questions could be
answered directly from the materialized model and its parameters, rather
than via random sampling".  This module implements that: variable
elimination along the network's construction order answers any marginal
query ``Pr_N[Q]`` exactly, removing the sampling noise that a finite
synthetic dataset adds on top of the model.

The algorithm walks the AP pairs in construction order, maintaining a
joint factor over the *live* attributes — those still needed either by the
query or as parents of a yet-unprocessed pair — and sums out attributes
the moment they go dead.  For a degree-``k`` network the factor holds at
most (query size + k·depth-overlap) attributes; for the low-degree
networks PrivBayes builds this stays far below the full domain.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

import numpy as np

from repro.core.noisy_conditionals import ConditionalTable, NoisyModel
from repro.data.marginals import domain_size

#: Safety bound on the intermediate factor size (cells).
DEFAULT_MAX_FACTOR_CELLS = 4_000_000


class _Factor:
    """A dense factor over an ordered list of (name, size) variables."""

    def __init__(self, names: List[str], sizes: List[int], values: np.ndarray):
        self.names = names
        self.sizes = sizes
        self.values = values.reshape(sizes) if sizes else values.reshape(())

    @staticmethod
    def unit() -> "_Factor":
        return _Factor([], [], np.array(1.0))

    def multiply_conditional(
        self,
        conditional: ConditionalTable,
        parent_names: List[str],
        parent_sizes: List[int],
        max_cells: int,
    ) -> "_Factor":
        """Multiply in ``Pr[child | parents]``, extending the scope.

        Parents not yet in scope must not exist (the caller introduces
        parents before children, so every parent is already in scope or is
        scope-extended here with its marginal folded in earlier).
        """
        child = conditional.child
        if child in self.names:
            raise ValueError(f"child {child!r} already in factor scope")
        # Extend scope with any missing parents (uniform axes are wrong —
        # parents are always introduced by their own conditional first, so
        # this is a structural error if it triggers).
        for name in parent_names:
            if name not in self.names:
                raise ValueError(
                    f"parent {name!r} used before being introduced"
                )
        new_names = self.names + [child]
        new_sizes = self.sizes + [conditional.child_size]
        if domain_size(new_sizes) > max_cells:
            raise ValueError(
                f"inference factor would need {domain_size(new_sizes)} cells "
                f"(> {max_cells}); query touches too much of the network"
            )
        # Broadcast: reshape the conditional to align parent axes.
        cond = conditional.matrix.reshape(parent_sizes + [conditional.child_size])
        # Axes of cond in the new factor: parents at their positions, child last.
        expand_shape = [1] * len(new_names)
        perm_src = []
        for name in parent_names:
            perm_src.append(self.names.index(name))
        # Build an array with cond values placed on (parent axes..., child).
        aligned = np.ones(expand_shape)
        # Move cond's axes into position via transpose + reshape with newaxis.
        # Order cond axes to match increasing factor axis index.
        positions = perm_src + [len(new_names) - 1]
        order = np.argsort(positions)
        cond_t = np.transpose(cond, order)
        shape = [1] * len(new_names)
        for axis_pos, cond_axis in zip(sorted(positions), range(cond_t.ndim)):
            shape[axis_pos] = cond_t.shape[cond_axis]
        aligned = cond_t.reshape(shape)
        new_values = self.values[..., np.newaxis] * aligned
        return _Factor(new_names, new_sizes, new_values)

    def sum_out(self, name: str) -> "_Factor":
        axis = self.names.index(name)
        new_values = self.values.sum(axis=axis)
        names = self.names[:axis] + self.names[axis + 1 :]
        sizes = self.sizes[:axis] + self.sizes[axis + 1 :]
        return _Factor(names, sizes, new_values)

    def marginal(self, names: Sequence[str]) -> np.ndarray:
        """Flat marginal over ``names`` in the given order."""
        keep = set(names)
        factor = self
        for name in list(factor.names):
            if name not in keep:
                factor = factor.sum_out(name)
        # Permute axes into the requested order.
        perm = [factor.names.index(name) for name in names]
        return np.transpose(factor.values, perm).reshape(-1)


def _generalization_factor(
    conditional: ConditionalTable,
    raw_parent_sizes: Dict[str, int],
    attribute_maps: Dict[str, np.ndarray],
) -> Tuple[List[str], List[int], ConditionalTable]:
    """Lift a conditional with generalized parents to raw parent domains.

    The conditional's rows are indexed by generalized parent codes; raw
    inference tracks raw codes, so expand the matrix to raw-parent rows by
    indexing through the taxonomy maps.
    """
    parent_names = [name for name, _ in conditional.parents]
    raw_sizes = [raw_parent_sizes[name] for name in parent_names]
    if all(level == 0 for _, level in conditional.parents):
        return parent_names, list(conditional.parent_sizes), conditional
    # Build the row index for every raw parent combination.
    from repro.data.marginals import unflatten_index, flatten_index

    total = domain_size(raw_sizes)
    raw_codes = unflatten_index(np.arange(total), raw_sizes)
    gen_columns = []
    for j, (name, level) in enumerate(conditional.parents):
        column = raw_codes[:, j]
        if level != 0:
            column = attribute_maps[(name, level)][column]
        gen_columns.append(column)
    gen_rows = flatten_index(
        np.stack(gen_columns, axis=1), list(conditional.parent_sizes)
    )
    lifted = ConditionalTable(
        child=conditional.child,
        parents=tuple((name, 0) for name in parent_names),
        parent_sizes=tuple(raw_sizes),
        child_size=conditional.child_size,
        matrix=conditional.matrix[gen_rows],
    )
    return parent_names, raw_sizes, lifted


def model_marginal(
    model: NoisyModel,
    attributes,
    query: Sequence[str],
    max_factor_cells: int = DEFAULT_MAX_FACTOR_CELLS,
) -> np.ndarray:
    """Exact ``Pr_N[query]`` by variable elimination (no sampling).

    Parameters
    ----------
    model:
        Output of distribution learning (noisy or oracle).
    attributes:
        Schema of the original table (for domain sizes / taxonomies).
    query:
        Attribute names, in the order of the returned flat marginal's
        mixed-radix layout.

    Returns a flat probability vector over the query attributes' domains.
    """
    by_name = {a.name: a for a in attributes}
    for name in query:
        if name not in by_name:
            raise KeyError(f"unknown attribute {name!r}")
    if len(set(query)) != len(query):
        raise ValueError("query attributes must be distinct")
    order = list(model.network.attribute_order)
    query_set = set(query)
    # Death position: the last pair index at which each attribute is needed.
    last_needed: Dict[str, int] = {}
    pairs = list(model.network.pairs)
    for i, pair in enumerate(pairs):
        last_needed[pair.child] = i
        for name in pair.parent_names:
            last_needed[name] = i
    # Precompute taxonomy maps for generalized parents.
    attribute_maps: Dict[Tuple[str, int], np.ndarray] = {}
    for pair in pairs:
        for name, level in pair.parents:
            if level != 0:
                attribute_maps[(name, level)] = by_name[name].generalization_map(
                    level
                )
    raw_sizes = {a.name: a.size for a in attributes}

    factor = _Factor.unit()
    for i, pair in enumerate(pairs):
        conditional = model.conditional_for(pair.child)
        parent_names, parent_sizes, lifted = _generalization_factor(
            conditional, raw_sizes, attribute_maps
        )
        factor = factor.multiply_conditional(
            lifted, parent_names, parent_sizes, max_factor_cells
        )
        # Sum out attributes that are dead: not in the query and never a
        # parent of a later pair.
        for name in list(factor.names):
            if name in query_set:
                continue
            if last_needed.get(name, -1) <= i:
                factor = factor.sum_out(name)
    return factor.marginal(list(query))


def model_marginals(
    model: NoisyModel,
    attributes,
    workload: Sequence[Sequence[str]],
    max_factor_cells: int = DEFAULT_MAX_FACTOR_CELLS,
) -> Dict[Tuple[str, ...], np.ndarray]:
    """Answer a whole marginal workload directly from the model."""
    return {
        tuple(names): model_marginal(
            model, attributes, list(names), max_factor_cells
        )
        for names in workload
    }
