"""Bayesian-network substrate: structure, validation, exact joints, quality."""

from repro.bn.network import APPair, BayesianNetwork
from repro.bn.quality import (
    exact_model_joint,
    model_kl_to_data,
    network_mutual_information,
)
from repro.bn.inference import model_marginal, model_marginals
from repro.bn.structure_search import (
    chow_liu_tree,
    exhaustive_best_network,
    network_score,
)

__all__ = [
    "APPair",
    "BayesianNetwork",
    "network_mutual_information",
    "exact_model_joint",
    "model_kl_to_data",
    "model_marginal",
    "model_marginals",
    "chow_liu_tree",
    "exhaustive_best_network",
    "network_score",
]
