"""Bayesian network structure as an ordered list of attribute-parent pairs.

A network over attributes ``A`` is a sequence of AP pairs
``(X_1, Π_1), ..., (X_d, Π_d)`` (Section 2.2) where each ``Π_i`` is a subset
of ``{X_1, ..., X_{i-1}}`` — the construction order itself witnesses
acyclicity.  For the hierarchical encoding, parents may be *generalized*
attributes; each parent is therefore stored as a ``(name, level)`` pair,
level 0 meaning the raw attribute.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple


@dataclass(frozen=True)
class APPair:
    """One attribute-parent pair ``(X, Π)``.

    ``parents`` is a tuple of ``(attribute_name, generalization_level)``
    pairs, sorted by name for canonical equality.  Level 0 is the raw
    attribute; higher levels refer to taxonomy-tree generalizations
    (Section 5.1).
    """

    child: str
    parents: Tuple[Tuple[str, int], ...]

    @staticmethod
    def make(child: str, parents: Sequence) -> "APPair":
        """Normalize ``parents`` given as names or (name, level) pairs."""
        normalized: List[Tuple[str, int]] = []
        for parent in parents:
            if isinstance(parent, str):
                normalized.append((parent, 0))
            else:
                name, level = parent
                normalized.append((str(name), int(level)))
        normalized.sort()
        names = [name for name, _ in normalized]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate parent attributes in {names}")
        if child in names:
            raise ValueError(f"child {child!r} cannot be its own parent")
        return APPair(child=child, parents=tuple(normalized))

    @property
    def parent_names(self) -> Tuple[str, ...]:
        return tuple(name for name, _ in self.parents)

    @property
    def degree(self) -> int:
        return len(self.parents)

    def __str__(self) -> str:  # pragma: no cover - display helper
        rendered = ", ".join(
            name if level == 0 else f"{name}^({level})"
            for name, level in self.parents
        )
        return f"({self.child} | {{{rendered}}})"


class BayesianNetwork:
    """An ordered collection of AP pairs forming a DAG.

    The constructor validates the three structural conditions of
    Section 2.2: children are unique, parents precede their children in the
    construction order, and hence the network is acyclic.
    """

    def __init__(self, pairs: Sequence[APPair]) -> None:
        self._pairs: Tuple[APPair, ...] = tuple(pairs)
        seen: List[str] = []
        for pair in self._pairs:
            if pair.child in seen:
                raise ValueError(f"attribute {pair.child!r} appears twice")
            for name in pair.parent_names:
                if name not in seen:
                    raise ValueError(
                        f"parent {name!r} of {pair.child!r} does not precede "
                        f"it in the construction order"
                    )
            seen.append(pair.child)
        self._order: Tuple[str, ...] = tuple(seen)

    @property
    def pairs(self) -> Tuple[APPair, ...]:
        return self._pairs

    @property
    def d(self) -> int:
        return len(self._pairs)

    @property
    def attribute_order(self) -> Tuple[str, ...]:
        """Construction (topological) order of the attributes."""
        return self._order

    @property
    def degree(self) -> int:
        """Maximum parent-set size (the ``k`` of Section 2.2)."""
        return max((pair.degree for pair in self._pairs), default=0)

    def pair_for(self, child: str) -> APPair:
        for pair in self._pairs:
            if pair.child == child:
                return pair
        raise KeyError(f"no AP pair with child {child!r}")

    def edges(self) -> List[Tuple[str, str]]:
        """Directed edges (parent, child), ignoring generalization levels."""
        out = []
        for pair in self._pairs:
            for name in pair.parent_names:
                out.append((name, pair.child))
        return out

    def parent_levels(self) -> Dict[str, Dict[str, int]]:
        """Per child, the generalization level used for each parent."""
        return {
            pair.child: {name: level for name, level in pair.parents}
            for pair in self._pairs
        }

    def __iter__(self):
        return iter(self._pairs)

    def __len__(self) -> int:
        return len(self._pairs)

    def __eq__(self, other) -> bool:
        return isinstance(other, BayesianNetwork) and self._pairs == other._pairs

    def __hash__(self) -> int:
        # In-process dict/set keys ONLY: the tuple hash recurses into the
        # attribute-name strings, whose hashes are PYTHONHASHSEED-salted, so
        # this value differs between interpreter processes.  Anything
        # crossing a process boundary (cache keys on disk, worker seeds,
        # transcripts) must use stable_fingerprint() instead — the exact
        # drift class behind the fig12-15 hash(name) seeding bug.
        return hash(self._pairs)

    def stable_fingerprint(self) -> int:
        """Process-stable CRC32 fingerprint of the network structure.

        Derived from a canonical textual rendering of the AP pairs, so the
        same structure yields the same value in every interpreter
        regardless of ``PYTHONHASHSEED`` (unlike :meth:`__hash__`).  Equal
        networks always agree; distinct structures collide only with CRC32
        probability, which is fine for cache keys, seeds and transcript
        stamps — not for adversarial integrity.
        """
        payload = ";".join(
            "%s|%s" % (
                pair.child,
                ",".join(f"{name}^{level}" for name, level in pair.parents),
            )
            for pair in self._pairs
        )
        return zlib.crc32(payload.encode("utf-8"))

    def __repr__(self) -> str:  # pragma: no cover - display helper
        return "BayesianNetwork[" + "; ".join(str(p) for p in self._pairs) + "]"
