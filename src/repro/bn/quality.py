"""Quality measures of a Bayesian network against the data it models.

The network-learning experiments (Figure 4) score a network by the sum of
mutual information over its AP pairs, ``sum_i I(X_i, Π_i)`` — the quantity
Algorithm 2 greedily maximizes (Equation 6 shows the KL divergence from the
model to the data decreases as that sum grows).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.bn.network import BayesianNetwork
from repro.core.score_kernels import score_I_segments
from repro.data.marginals import (
    domain_size,
    ensure_int64_domain,
    flatten_index,
    joint_distribution,
    stacked_joint_counts,
    unflatten_index,
)
from repro.data.table import Table
from repro.infotheory.measures import kl_divergence, segment_sums


def generalized_codes(table: Table, name: str, level: int) -> Tuple[np.ndarray, int]:
    """Column codes of ``name`` generalized to taxonomy ``level``.

    Returns the codes and the generalized domain size.  Level 0 returns the
    raw column.
    """
    attr = table.attribute(name)
    codes = table.column(name)
    if level == 0:
        return codes, attr.size
    mapping = attr.generalization_map(level)
    return mapping[codes], int(mapping.max()) + 1 if mapping.size else 1


class ParentIndexCache:
    """Cached per-row flattened configurations of (generalized) parent sets.

    Both the candidate-scoring engine (:mod:`repro.core.scoring`) and the
    distribution learner's :class:`~repro.core.noisy_conditionals.JointCounter`
    need, per parent set, the mixed-radix flattening of every row's parent
    values — the expensive O(n·|Π|) part of building any ``Pr[Π, X]``
    contingency.  One cache per table serves both (shared through
    :class:`~repro.core.scoring.ScoringCache`), so a parent set selected
    during structure search is never re-flattened during distribution
    learning.  Everything here is a deterministic data statistic; cached
    arrays must be treated as read-only.
    """

    def __init__(self, table: Table) -> None:
        self.table = table
        self._codes: Dict[Tuple[str, int], Tuple[np.ndarray, int]] = {}
        self._flat: Dict[Tuple, Tuple[np.ndarray, Tuple[int, ...]]] = {}

    def codes(self, name: str, level: int) -> Tuple[np.ndarray, int]:
        """Memoized :func:`generalized_codes`."""
        key = (name, level)
        if key not in self._codes:
            self._codes[key] = generalized_codes(self.table, name, level)
        return self._codes[key]

    def flat(
        self, parents: Tuple[Tuple[str, int], ...]
    ) -> Tuple[np.ndarray, Tuple[int, ...]]:
        """Flattened parent configuration per row, plus the parent sizes."""
        if parents not in self._flat:
            columns: List[np.ndarray] = []
            sizes: List[int] = []
            for name, level in parents:
                codes, size = self.codes(name, level)
                columns.append(codes)
                sizes.append(size)
            if columns:
                flat = flatten_index(np.stack(columns, axis=1), sizes)
            else:
                flat = np.zeros(self.table.n, dtype=np.int64)
            self._flat[parents] = (flat, tuple(sizes))
        return self._flat[parents]


def _flatten_generalized_parents(
    table: Table, parents: Sequence[Tuple[str, int]]
) -> Tuple[np.ndarray, List[int]]:
    """Per-row parent configuration codes and sizes for a (possibly
    generalized) parent set — the uncached counterpart of
    :meth:`ParentIndexCache.flat`, shared by every joint builder in this
    module so the flattening semantics cannot drift between them."""
    columns: List[np.ndarray] = []
    sizes: List[int] = []
    for name, level in parents:
        codes, size = generalized_codes(table, name, level)
        columns.append(codes)
        sizes.append(size)
    if columns:
        flat = flatten_index(np.stack(columns, axis=1), sizes)
    else:
        flat = np.zeros(table.n, dtype=np.int64)
    return flat, sizes


def pair_joint_distribution(
    table: Table,
    child: str,
    parents: Sequence[Tuple[str, int]],
) -> Tuple[np.ndarray, int]:
    """Empirical ``Pr[Π, X]`` (child innermost) for a possibly generalized
    parent set.  Returns the flat joint and the child domain size."""
    parent_flat, sizes = _flatten_generalized_parents(table, parents)
    child_attr = table.attribute(child)
    total = ensure_int64_domain(
        domain_size(sizes + [child_attr.size]), "pair joint domain"
    )
    flat = parent_flat * child_attr.size + table.column(child)
    counts = np.bincount(flat, minlength=total).astype(float)
    joint = counts / counts.sum() if counts.sum() > 0 else counts
    return joint, child_attr.size


def pair_group_mutual_information(
    table: Table,
    parents: Sequence[Tuple[str, int]],
    children: Sequence[str],
) -> List[float]:
    """``I(child, Π)`` for every child sharing one (generalized) parent set.

    The parent configuration is flattened once, all children's joints are
    counted in one stacked ``np.bincount`` pass, and the stacked block goes
    *straight* into the ragged segmented kernel
    (:func:`repro.core.score_kernels.score_I_segments`) — no per-candidate
    reshaping or same-size bucketing here.  Normalization divides each
    element by its candidate's exact segment total
    (:func:`repro.infotheory.measures.segment_sums`), so each value is
    bit-equal to ``mutual_information(*pair_joint_distribution(...))`` on
    the same pair.  This is the batched core under both
    :func:`network_mutual_information` and
    :meth:`repro.core.scoring.MutualInformationCache.pair_mi_batch`.
    """
    parent_flat, sizes = _flatten_generalized_parents(table, parents)
    parent_dom = domain_size(sizes)
    child_sizes = [table.attribute(c).size for c in children]
    block, offsets, lengths = stacked_joint_counts(
        parent_flat, parent_dom,
        [table.column(c) for c in children], child_sizes,
    )
    floats = block.astype(float)
    lengths = np.asarray(lengths, dtype=np.int64)
    ids = np.repeat(np.arange(len(children), dtype=np.int64), lengths)
    totals = segment_sums(floats, ids, len(children))
    # Empty table: pair_joint_distribution leaves the all-zero vector
    # unnormalized (divide by 1 here), and the kernel scores it to the
    # same exact 0.0 the normalized path produces.
    divisors = np.where(totals > 0.0, totals, 1.0)
    normalized = floats / np.repeat(divisors, lengths)
    values = score_I_segments(normalized, offsets, lengths, child_sizes)
    return [float(v) for v in values]


def network_mutual_information(
    table: Table, network: BayesianNetwork, mi_cache=None
) -> float:
    """``sum_i I(X_i, Π_i)`` of the network on the empirical distribution.

    AP pairs sharing a parent set are measured together through
    :func:`pair_group_mutual_information` (bit-equal to the pair-by-pair
    path, summed in network order).  ``mi_cache`` is an optional
    :class:`~repro.core.scoring.MutualInformationCache` (duck-typed to keep
    this module import-light); pass one when scoring many networks over the
    same table so repeated AP pairs are measured once.
    """
    if mi_cache is not None and mi_cache.table is not table:
        raise ValueError("mi_cache was built for a different table")
    groups: Dict[Tuple, List[str]] = {}
    for pair in network:
        if pair.parents:
            groups.setdefault(pair.parents, []).append(pair.child)
    pair_values: Dict[Tuple, float] = {}
    for parents, children in groups.items():
        if mi_cache is not None:
            mi_cache.pair_mi_batch(parents, children)
            for child in children:
                pair_values[(child, parents)] = mi_cache.pair_mi(
                    child, parents
                )
        else:
            for child, value in zip(
                children,
                pair_group_mutual_information(table, parents, children),
            ):
                pair_values[(child, parents)] = value
    total = 0.0
    for pair in network:
        if pair.parents:
            total += pair_values[(pair.child, pair.parents)]
    return total


def exact_model_joint(table: Table, network: BayesianNetwork) -> np.ndarray:
    """Materialize ``Pr_N[A]`` over the full domain (small domains only).

    Attributes follow the network's construction order.  Intended for tests
    and tiny illustrative examples — the whole point of PrivBayes is to never
    need this at scale.
    """
    order = list(network.attribute_order)
    sizes = [table.attribute(name).size for name in order]
    total = domain_size(sizes)
    if total > 2_000_000:
        raise ValueError(f"domain size {total} too large to materialize")
    grid = np.ones(total, dtype=float)
    coords = unflatten_index(np.arange(total), sizes)  # (total, d)
    position = {name: i for i, name in enumerate(order)}
    for pair in network:
        child_idx = position[pair.child]
        child_size = sizes[child_idx]
        if pair.parents:
            if any(level != 0 for _, level in pair.parents):
                raise ValueError(
                    "exact_model_joint does not support generalized parents"
                )
            parent_names = list(pair.parent_names)
            joint = joint_distribution(table, parent_names + [pair.child])
            parent_sizes = [table.attribute(p).size for p in parent_names]
            conditional = joint.reshape(-1, child_size)
            row_sums = conditional.sum(axis=1, keepdims=True)
            safe = np.where(row_sums > 0, row_sums, 1.0)
            conditional = np.where(
                row_sums > 0, conditional / safe, 1.0 / child_size
            )
            parent_coords = np.stack(
                [coords[:, position[p]] for p in parent_names], axis=1
            )
            parent_flat = flatten_index(parent_coords, parent_sizes)
            grid *= conditional[parent_flat, coords[:, child_idx]]
        else:
            marginal = joint_distribution(table, [pair.child])
            grid *= marginal[coords[:, child_idx]]
    return grid


def model_kl_to_data(table: Table, network: BayesianNetwork) -> float:
    """``D_KL(Pr[A] || Pr_N[A])`` over the full domain (small domains only)."""
    order = list(network.attribute_order)
    data_joint = joint_distribution(table, order)
    model_joint = exact_model_joint(table, network)
    return kl_divergence(data_joint, model_joint)
