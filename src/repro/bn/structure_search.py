"""Non-private reference structure search: Chow-Liu trees and brute force.

These are the gold standards the private algorithms approximate:

* :func:`chow_liu_tree` — the exact optimal 1-degree network (Chow & Liu
  1968): a maximum spanning tree over pairwise mutual information, rooted
  at a chosen attribute.  Algorithm 2 with ``k = 1`` and argmax selection
  is equivalent (Section 4.1); this module provides the independent MST
  construction used to verify that claim in tests.
* :func:`exhaustive_best_network` — the true optimum ``max Σ I(X_i, Π_i)``
  over *all* attribute orders and parent sets, by dynamic programming over
  subsets.  Exponential in ``d`` (the problem is NP-hard for ``k > 1``,
  Section 4.1), usable for ``d ≤ ~12``.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.bn.network import APPair, BayesianNetwork
from repro.core.scoring import MutualInformationCache
from repro.data.table import Table


def _check_mi_cache(
    mi_cache: Optional[MutualInformationCache], table: Table
) -> MutualInformationCache:
    """Use the caller's cache after checking it was built on this table."""
    if mi_cache is None:
        return MutualInformationCache(table)
    if mi_cache.table is not table:
        raise ValueError("mi_cache was built for a different table")
    return mi_cache


def pairwise_mutual_information(
    table: Table, mi_cache: Optional[MutualInformationCache] = None
) -> Dict[Tuple[str, str], float]:
    """``I(X, Y)`` for every unordered attribute pair.

    All pairs anchored on one attribute are counted in a single stacked
    contingency pass and scored through the batched ``I`` kernel
    (:meth:`~repro.core.scoring.MutualInformationCache.mi_batch`) — ``d``
    table scans instead of ``d²/2``, bit-identical values.  ``mi_cache``
    (a shared :class:`~repro.core.scoring.MutualInformationCache`) makes
    repeated calls over the same table free.
    """
    mi_cache = _check_mi_cache(mi_cache, table)
    names = list(table.attribute_names)
    for i, anchor in enumerate(names[:-1]):
        mi_cache.mi_batch(anchor, names[i + 1 :])
    out = {}
    for a, b in itertools.combinations(names, 2):
        out[(a, b)] = mi_cache.mi(b, (a,))
    return out


def chow_liu_tree(
    table: Table,
    root: Optional[str] = None,
    mi_cache: Optional[MutualInformationCache] = None,
) -> BayesianNetwork:
    """Exact optimal 1-degree network via maximum spanning tree.

    Kruskal over edges weighted by mutual information, then oriented away
    from ``root`` (default: the first attribute) by breadth-first search.
    """
    names = list(table.attribute_names)
    if not names:
        return BayesianNetwork([])
    if root is None:
        root = names[0]
    if root not in names:
        raise ValueError(f"unknown root {root!r}")
    if len(names) == 1:
        return BayesianNetwork([APPair.make(root, [])])
    weights = pairwise_mutual_information(table, mi_cache)
    edges = sorted(weights.items(), key=lambda kv: -kv[1])
    # Kruskal with union-find.
    parent_of = {name: name for name in names}

    def find(x):
        while parent_of[x] != x:
            parent_of[x] = parent_of[parent_of[x]]
            x = parent_of[x]
        return x

    adjacency: Dict[str, List[str]] = {name: [] for name in names}
    accepted = 0
    for (a, b), _ in edges:
        ra, rb = find(a), find(b)
        if ra == rb:
            continue
        parent_of[ra] = rb
        adjacency[a].append(b)
        adjacency[b].append(a)
        accepted += 1
        if accepted == len(names) - 1:
            break
    # Orient away from the root (BFS); isolated attrs become parentless.
    pairs = [APPair.make(root, [])]
    visited = {root}
    frontier = deque([root])
    while frontier:
        current = frontier.popleft()
        for neighbor in adjacency[current]:
            if neighbor in visited:
                continue
            visited.add(neighbor)
            pairs.append(APPair.make(neighbor, [current]))
            frontier.append(neighbor)
    for name in names:
        if name not in visited:
            pairs.append(APPair.make(name, []))
            visited.add(name)
    return BayesianNetwork(pairs)


def network_score(
    table: Table,
    network: BayesianNetwork,
    mi_cache: Optional[MutualInformationCache] = None,
) -> float:
    """``Σ I(X_i, Π_i)`` of a network on the empirical distribution."""
    mi_cache = _check_mi_cache(mi_cache, table)
    total = 0.0
    for pair in network:
        if pair.parents:
            total += mi_cache.mi(pair.child, pair.parent_names)
    return total


def exhaustive_best_network(
    table: Table,
    k: int,
    max_d: int = 12,
    mi_cache: Optional[MutualInformationCache] = None,
) -> BayesianNetwork:
    """The true optimal ``k``-degree network by subset dynamic programming.

    State: the set ``S`` of already-placed attributes; value: the best
    achievable ``Σ I`` placing exactly the attributes of ``S`` first.
    Transition: append attribute ``x ∉ S`` with its best parent set
    ``Π ⊆ S, |Π| ≤ k``.  ``O(2^d · d · C(d, k))`` — reference only.
    """
    names = list(table.attribute_names)
    d = len(names)
    if d > max_d:
        raise ValueError(f"exhaustive search limited to d <= {max_d}")
    if d == 0:
        return BayesianNetwork([])
    mi_cache = _check_mi_cache(mi_cache, table)
    index = {name: i for i, name in enumerate(names)}

    # Best parent set (and its MI) for each (attribute, available-mask).
    best_mi: Dict[Tuple[int, int], Tuple[float, Tuple[str, ...]]] = {}

    def best_parents(x: int, mask: int) -> Tuple[float, Tuple[str, ...]]:
        key = (x, mask)
        if key in best_mi:
            return best_mi[key]
        available = [names[i] for i in range(d) if mask & (1 << i)]
        best = (0.0, ())
        width = min(k, len(available))
        for combo in itertools.combinations(available, width):
            # The MI cache dedupes the same (child, combo) across the
            # exponentially many masks that expose it.
            mi = mi_cache.mi(names[x], combo)
            if mi > best[0]:
                best = (mi, combo)
        best_mi[key] = best
        return best

    # DP over subsets.
    NEG = float("-inf")
    value = np.full(1 << d, NEG)
    choice: Dict[int, Tuple[int, Tuple[str, ...]]] = {}
    value[0] = 0.0
    for mask in range(1 << d):
        if value[mask] == NEG:
            continue
        for x in range(d):
            if mask & (1 << x):
                continue
            mi, parents = best_parents(x, mask)
            new_mask = mask | (1 << x)
            if value[mask] + mi > value[new_mask]:
                value[new_mask] = value[mask] + mi
                choice[new_mask] = (x, parents)
    # Reconstruct.
    order: List[Tuple[str, Tuple[str, ...]]] = []
    mask = (1 << d) - 1
    while mask:
        x, parents = choice[mask]
        order.append((names[x], parents))
        mask &= ~(1 << x)
    order.reverse()
    return BayesianNetwork([APPair.make(child, parents) for child, parents in order])
