"""``python -m repro.analysis`` — the self-hosted CI gate.

Exit codes: 0 = no unsuppressed findings, 1 = unsuppressed findings,
2 = usage error (argparse).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.baseline import load_baseline, write_baseline
from repro.analysis.cache import DEFAULT_CACHE_NAME, ResultCache
from repro.analysis.engine import AnalysisReport, analyze_paths
from repro.analysis.rules import default_rules

DEFAULT_BASELINE_NAME = "analysis_baseline.json"

_STATUS_TAGS = {"open": "", "suppressed": " [suppressed]", "baselined": " [baselined]"}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Determinism / privacy-budget / numeric-safety static analyzer "
            "for this repository (see src/repro/analysis/README.md)."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", type=Path, help="files or directories to analyze"
    )
    parser.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="report format (default: human)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help=(
            "baseline file of grandfathered findings (default: "
            f"./{DEFAULT_BASELINE_NAME} when present)"
        ),
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the current open findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--cache",
        type=Path,
        default=None,
        help=f"result-cache file (default: ./{DEFAULT_CACHE_NAME})",
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="disable the result cache"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help=(
            "run pass 2 (per-file rules) across N worker processes; "
            "findings are identical to a serial run (default: 1)"
        ),
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="describe the rule set and exit"
    )
    return parser


def _print_human(report: AnalysisReport, stream) -> None:
    for finding in report.findings:
        tag = _STATUS_TAGS[finding.status]
        print(
            f"{finding.path}:{finding.line}:{finding.col}: "
            f"{finding.rule} {finding.message}{tag}",
            file=stream,
        )
        if finding.status == "suppressed" and finding.justification:
            print(f"    allowed: {finding.justification}", file=stream)
    counts = report.to_json_dict()["counts"]
    print(
        f"{report.files_scanned} files scanned: {counts['open']} open, "
        f"{counts['suppressed']} suppressed, {counts['baselined']} baselined "
        f"(cache: {report.cache_hits} hits / {report.cache_misses} misses)",
        file=stream,
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in default_rules():
            print(f"{rule.id}  [{rule.tier}] {rule.title}")
            print(f"       {rule.rationale}")
        return 0
    if not args.paths:
        parser.error("no paths given (try: python -m repro.analysis src tests)")

    baseline_path = args.baseline
    if baseline_path is None:
        candidate = Path(DEFAULT_BASELINE_NAME)
        baseline_path = candidate if candidate.is_file() else None
    baseline = load_baseline(baseline_path) if baseline_path else {}

    cache = None
    if not args.no_cache:
        cache = ResultCache(args.cache or Path(DEFAULT_CACHE_NAME))

    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    report = analyze_paths(
        args.paths, cache=cache, baseline=baseline, jobs=args.jobs
    )
    if cache is not None:
        cache.save()

    if args.write_baseline:
        target = args.baseline or Path(DEFAULT_BASELINE_NAME)
        entries = write_baseline(target, report.findings)
        print(f"wrote {len(entries)} baseline entries to {target}")
        return 0

    if args.format == "json":
        json.dump(report.to_json_dict(), sys.stdout, indent=2)
        print()
    else:
        _print_human(report, sys.stdout)
    return report.exit_code


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
