"""Analysis engine: file discovery, rule execution, suppression, reporting.

Since schema v2 the engine runs in two passes:

* **pass 1** parses every file once, builds the project-wide
  :class:`~repro.analysis.symbols.SymbolGraph` and collects the native
  C sources (``**/_native/*.c``) into an
  :class:`~repro.analysis.flow_rules.AnalysisContext`;
* **pass 2** runs the rules per file — AST-tier rules see just the
  tree, flow-tier rules also receive the context.  Pass 2 is
  embarrassingly parallel and ``--jobs N`` fans it out over a process
  pool (deterministic: results are gathered in file order).

The result cache stays per-file: the context's fingerprint is folded
into the cache signature, so a *cross-file* change (a helper moving
modules, a C prototype edit) invalidates cached findings even though
the analyzed file's own bytes never changed.
"""

from __future__ import annotations

import ast
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.baseline import apply_baseline, finding_fingerprint
from repro.analysis.cache import ResultCache, content_digest, rules_signature
from repro.analysis.flow_rules import AnalysisContext
from repro.analysis.pragmas import pragma_for, scan_pragmas
from repro.analysis.rules import (
    ANALYZER_VERSION,
    BAD_PRAGMA_RULE,
    PARSE_ERROR_RULE,
    Finding,
    Rule,
    default_rules,
)
from repro.analysis.symbols import build_symbol_graph

#: Version of the JSON report layout; tests pin it.
#: 2: findings carry a "tier" field; rule entries carry "tier".
REPORT_SCHEMA_VERSION = 2

_SKIP_DIR_NAMES = {"__pycache__", ".git", ".hypothesis", ".pytest_cache"}


def iter_python_files(paths: Sequence[Path]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: List[Path] = []
    for path in paths:
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not _SKIP_DIR_NAMES.intersection(candidate.parts):
                    out.append(candidate)
        elif path.suffix == ".py":
            out.append(path)
        else:
            raise FileNotFoundError(f"not a python file or directory: {path}")
    return out


def iter_native_sources(paths: Sequence[Path]) -> List[Path]:
    """Every ``_native/*.c`` source under the scanned paths (for ABI001)."""
    out: List[Path] = []
    for path in paths:
        if path.is_dir():
            for candidate in sorted(path.rglob("*.c")):
                if (
                    candidate.parent.name == "_native"
                    and not _SKIP_DIR_NAMES.intersection(candidate.parts)
                ):
                    out.append(candidate)
        elif path.suffix == ".c" and path.parent.name == "_native":
            out.append(path)
    return out


def build_context(
    sources: Iterable[Tuple[str, str]],
    native_sources: Optional[Dict[str, str]] = None,
) -> AnalysisContext:
    """Pass 1: symbol graph + native sources from ``(path, text)`` pairs."""
    return AnalysisContext(
        symbols=build_symbol_graph(sources),
        native_sources=dict(native_sources or {}),
    )


def analyze_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Sequence[Rule]] = None,
    context: Optional[AnalysisContext] = None,
) -> List[Finding]:
    """Run all rules over one module's source, resolving pragmas.

    Flow-tier rules receive ``context`` (None degrades gracefully: name
    resolution falls back to literal names, ABI001 stays silent).
    Baseline matching is *not* applied here — it depends on an external
    file; see :func:`analyze_paths`.
    """
    rules = list(default_rules()) if rules is None else list(rules)
    lines = source.splitlines()

    def _line_text(line: int) -> str:
        return lines[line - 1] if 0 < line <= len(lines) else ""

    def _make(
        rule_id: str, line: int, col: int, message: str, tier: str = "ast"
    ) -> Finding:
        text = _line_text(line)
        return Finding(
            rule=rule_id,
            path=path,
            line=line,
            col=col,
            message=message,
            fingerprint=finding_fingerprint(path, rule_id, text),
            snippet=text.strip()[:160],
            tier=tier,
        )

    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [
            _make(
                PARSE_ERROR_RULE,
                exc.lineno or 1,
                (exc.offset or 1) - 1,
                f"file does not parse: {exc.msg}",
            )
        ]

    pragmas, pragma_errors = scan_pragmas(source)
    findings = [
        _make(BAD_PRAGMA_RULE, line, col, message)
        for line, col, message in pragma_errors
    ]
    for rule in rules:
        if not rule.applies_to(path):
            continue
        tier = getattr(rule, "tier", "ast")
        if tier == "flow":
            results = rule.check(tree, path, context)
        else:
            results = rule.check(tree, path)
        for line, col, message in results:
            findings.append(_make(rule.id, line, col, message, tier))

    resolved: List[Finding] = []
    for finding in findings:
        pragma = pragma_for(pragmas, finding.rule, finding.line)
        if pragma is not None:
            finding = replace(
                finding,
                status="suppressed",
                justification=pragma.justification,
            )
        resolved.append(finding)
    resolved.sort(key=Finding.sort_key)
    return resolved


@dataclass
class AnalysisReport:
    """Aggregated results of one analyzer run."""

    findings: List[Finding]
    files_scanned: int
    paths: List[str]
    rules: List[Rule]
    cache_hits: int = 0
    cache_misses: int = 0

    def by_status(self, status: str) -> List[Finding]:
        return [f for f in self.findings if f.status == status]

    @property
    def open_findings(self) -> List[Finding]:
        return self.by_status("open")

    @property
    def exit_code(self) -> int:
        return 1 if self.open_findings else 0

    def to_json_dict(self) -> Dict:
        return {
            "schema_version": REPORT_SCHEMA_VERSION,
            "analyzer_version": ANALYZER_VERSION,
            "paths": list(self.paths),
            "files_scanned": self.files_scanned,
            "rules": [
                {
                    "id": rule.id,
                    "title": rule.title,
                    "tier": getattr(rule, "tier", "ast"),
                }
                for rule in self.rules
            ],
            "counts": {
                "open": len(self.by_status("open")),
                "suppressed": len(self.by_status("suppressed")),
                "baselined": len(self.by_status("baselined")),
            },
            "findings": [f.to_dict() for f in self.findings],
        }


# ---------------------------------------------------------------------------
# --jobs worker plumbing (top-level for pickling; state set per worker
# once via the pool initializer instead of per task)

_WORKER_RULES: Optional[List[Rule]] = None
_WORKER_CONTEXT: Optional[AnalysisContext] = None


def _init_worker(rules: List[Rule], context: Optional[AnalysisContext]) -> None:
    global _WORKER_RULES, _WORKER_CONTEXT
    _WORKER_RULES = rules
    _WORKER_CONTEXT = context


def _run_worker(item: Tuple[str, str]) -> List[Finding]:
    shown, text = item
    return analyze_source(text, shown, _WORKER_RULES, _WORKER_CONTEXT)


def analyze_paths(
    paths: Sequence[Path],
    rules: Optional[Sequence[Rule]] = None,
    cache: Optional[ResultCache] = None,
    baseline: Optional[Dict[str, int]] = None,
    root: Optional[Path] = None,
    jobs: int = 1,
) -> AnalysisReport:
    """Analyze every ``.py`` file under ``paths`` (two-pass).

    Paths in findings are rendered relative to ``root`` (default: the
    current directory) with posix separators, so reports, baselines and
    caches are machine-independent.  ``jobs > 1`` fans pass 2 out over a
    process pool; findings are identical to a serial run (gathered in
    file order, then sorted).
    """
    rules = list(default_rules()) if rules is None else list(rules)
    root = Path.cwd() if root is None else root
    files = iter_python_files([Path(p) for p in paths])

    def _shown(file_path: Path) -> str:
        try:
            return file_path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            return file_path.as_posix()

    # ---- pass 1: read everything once, build the project context -------
    loaded: List[Tuple[str, bytes]] = [
        (_shown(file_path), file_path.read_bytes()) for file_path in files
    ]
    texts = {
        shown: data.decode("utf-8", errors="replace") for shown, data in loaded
    }
    native = {
        _shown(c_path): c_path.read_text(errors="replace")
        for c_path in iter_native_sources([Path(p) for p in paths])
    }
    context = build_context(
        ((shown, texts[shown]) for shown, _ in loaded), native
    )
    signature = rules_signature(rules, context.fingerprint())

    # ---- pass 2: per-file rule runs (cached / parallel) -----------------
    results: Dict[str, List[Finding]] = {}
    pending: List[Tuple[str, str]] = []
    for shown, data in loaded:
        digest = content_digest(data)
        cached = (
            cache.get(shown, digest, signature) if cache is not None else None
        )
        if cached is not None:
            results[shown] = cached
        else:
            pending.append((shown, texts[shown]))
    if pending:
        if jobs > 1:
            with ProcessPoolExecutor(
                max_workers=jobs,
                initializer=_init_worker,
                initargs=(rules, context),
            ) as pool:
                for (shown, _), file_findings in zip(
                    pending, pool.map(_run_worker, pending)
                ):
                    results[shown] = file_findings
        else:
            for shown, text in pending:
                results[shown] = analyze_source(text, shown, rules, context)
        if cache is not None:
            digests = {shown: content_digest(data) for shown, data in loaded}
            for shown, _ in pending:
                cache.put(shown, digests[shown], signature, results[shown])

    findings: List[Finding] = []
    for shown, _ in loaded:
        findings.extend(results[shown])
    if baseline:
        findings = apply_baseline(findings, baseline)
    findings.sort(key=Finding.sort_key)
    return AnalysisReport(
        findings=findings,
        files_scanned=len(files),
        paths=[str(p) for p in paths],
        rules=rules,
        cache_hits=cache.hits if cache is not None else 0,
        cache_misses=cache.misses if cache is not None else 0,
    )
