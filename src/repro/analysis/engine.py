"""Analysis engine: file discovery, rule execution, suppression, reporting."""

from __future__ import annotations

import ast
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

from repro.analysis.baseline import apply_baseline, finding_fingerprint
from repro.analysis.cache import ResultCache, content_digest, rules_signature
from repro.analysis.pragmas import pragma_for, scan_pragmas
from repro.analysis.rules import (
    ANALYZER_VERSION,
    BAD_PRAGMA_RULE,
    PARSE_ERROR_RULE,
    Finding,
    Rule,
    default_rules,
)

#: Version of the JSON report layout; tests pin it.
REPORT_SCHEMA_VERSION = 1

_SKIP_DIR_NAMES = {"__pycache__", ".git", ".hypothesis", ".pytest_cache"}


def iter_python_files(paths: Sequence[Path]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: List[Path] = []
    for path in paths:
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not _SKIP_DIR_NAMES.intersection(candidate.parts):
                    out.append(candidate)
        elif path.suffix == ".py":
            out.append(path)
        else:
            raise FileNotFoundError(f"not a python file or directory: {path}")
    return out


def analyze_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Run all rules over one module's source, resolving pragmas.

    Baseline matching is *not* applied here — it depends on an external
    file; see :func:`analyze_paths`.
    """
    rules = list(default_rules()) if rules is None else list(rules)
    lines = source.splitlines()

    def _line_text(line: int) -> str:
        return lines[line - 1] if 0 < line <= len(lines) else ""

    def _make(rule_id: str, line: int, col: int, message: str) -> Finding:
        text = _line_text(line)
        return Finding(
            rule=rule_id,
            path=path,
            line=line,
            col=col,
            message=message,
            fingerprint=finding_fingerprint(path, rule_id, text),
            snippet=text.strip()[:160],
        )

    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [
            _make(
                PARSE_ERROR_RULE,
                exc.lineno or 1,
                (exc.offset or 1) - 1,
                f"file does not parse: {exc.msg}",
            )
        ]

    pragmas, pragma_errors = scan_pragmas(source)
    findings = [
        _make(BAD_PRAGMA_RULE, line, col, message)
        for line, col, message in pragma_errors
    ]
    for rule in rules:
        if not rule.applies_to(path):
            continue
        for line, col, message in rule.check(tree, path):
            findings.append(_make(rule.id, line, col, message))

    resolved: List[Finding] = []
    for finding in findings:
        pragma = pragma_for(pragmas, finding.rule, finding.line)
        if pragma is not None:
            finding = replace(
                finding,
                status="suppressed",
                justification=pragma.justification,
            )
        resolved.append(finding)
    resolved.sort(key=Finding.sort_key)
    return resolved


@dataclass
class AnalysisReport:
    """Aggregated results of one analyzer run."""

    findings: List[Finding]
    files_scanned: int
    paths: List[str]
    rules: List[Rule]
    cache_hits: int = 0
    cache_misses: int = 0

    def by_status(self, status: str) -> List[Finding]:
        return [f for f in self.findings if f.status == status]

    @property
    def open_findings(self) -> List[Finding]:
        return self.by_status("open")

    @property
    def exit_code(self) -> int:
        return 1 if self.open_findings else 0

    def to_json_dict(self) -> Dict:
        return {
            "schema_version": REPORT_SCHEMA_VERSION,
            "analyzer_version": ANALYZER_VERSION,
            "paths": list(self.paths),
            "files_scanned": self.files_scanned,
            "rules": [
                {"id": rule.id, "title": rule.title} for rule in self.rules
            ],
            "counts": {
                "open": len(self.by_status("open")),
                "suppressed": len(self.by_status("suppressed")),
                "baselined": len(self.by_status("baselined")),
            },
            "findings": [f.to_dict() for f in self.findings],
        }


def analyze_paths(
    paths: Sequence[Path],
    rules: Optional[Sequence[Rule]] = None,
    cache: Optional[ResultCache] = None,
    baseline: Optional[Dict[str, int]] = None,
    root: Optional[Path] = None,
) -> AnalysisReport:
    """Analyze every ``.py`` file under ``paths``.

    Paths in findings are rendered relative to ``root`` (default: the
    current directory) with posix separators, so reports, baselines and
    caches are machine-independent.
    """
    rules = list(default_rules()) if rules is None else list(rules)
    root = Path.cwd() if root is None else root
    signature = rules_signature(rules)
    files = iter_python_files([Path(p) for p in paths])
    findings: List[Finding] = []
    for file_path in files:
        try:
            rel = file_path.resolve().relative_to(root.resolve())
            shown = rel.as_posix()
        except ValueError:
            shown = file_path.as_posix()
        data = file_path.read_bytes()
        digest = content_digest(data)
        cached = (
            cache.get(shown, digest, signature) if cache is not None else None
        )
        if cached is None:
            cached = analyze_source(
                data.decode("utf-8", errors="replace"), shown, rules
            )
            if cache is not None:
                cache.put(shown, digest, signature, cached)
        findings.extend(cached)
    if baseline:
        findings = apply_baseline(findings, baseline)
    findings.sort(key=Finding.sort_key)
    return AnalysisReport(
        findings=findings,
        files_scanned=len(files),
        paths=[str(p) for p in paths],
        rules=rules,
        cache_hits=cache.hits if cache is not None else 0,
        cache_misses=cache.misses if cache is not None else 0,
    )
