"""Determinism & privacy-budget static analyzer (the repo's CI gate).

AST-based rules targeting this codebase's three historical bug classes —
determinism drift (DET001-003), privacy-budget flow (PRIV001-002) and
numeric overflow (NUM001) — with inline suppression pragmas, a checked-in
baseline for grandfathered sites, per-file result caching and a
``python -m repro.analysis`` CLI.  The analyzer is self-hosted: CI runs it
over ``src`` and ``tests`` and fails on any unsuppressed finding.

See ``src/repro/analysis/README.md`` for the rule catalogue and workflow.
"""

from repro.analysis.baseline import (
    apply_baseline,
    finding_fingerprint,
    load_baseline,
    write_baseline,
)
from repro.analysis.cache import ResultCache
from repro.analysis.engine import (
    REPORT_SCHEMA_VERSION,
    AnalysisReport,
    analyze_paths,
    analyze_source,
    iter_python_files,
)
from repro.analysis.rules import (
    ANALYZER_VERSION,
    RULES,
    Finding,
    Rule,
    default_rules,
)

__all__ = [
    "ANALYZER_VERSION",
    "REPORT_SCHEMA_VERSION",
    "AnalysisReport",
    "Finding",
    "ResultCache",
    "RULES",
    "Rule",
    "analyze_paths",
    "analyze_source",
    "apply_baseline",
    "default_rules",
    "finding_fingerprint",
    "iter_python_files",
    "load_baseline",
    "write_baseline",
]
