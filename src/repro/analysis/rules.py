"""Rule framework and the built-in rule set.

Each rule is an AST check targeting one of this codebase's historical bug
classes (see README.md for the full rationale table):

* DET001 — unseeded / global-state RNG construction.
* DET002 — builtin ``hash()`` outside ``__hash__`` (PYTHONHASHSEED drift).
* DET003 — iteration over unordered collections feeding numeric
  accumulation or RNG state.
* PRIV001 — raw ε arithmetic outside the accountant/mechanism modules.
* PRIV002 — noise calls whose scale expression bypasses the sensitivity
  helpers.
* NUM001 — unguarded products over domain-size arrays (int64 overflow).

Rules yield ``(line, col, message)`` triples; suppression, baselining and
caching happen in :mod:`repro.analysis.engine`.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field, replace
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

#: Bumped whenever rule behavior changes; part of the result-cache key.
#: "2": flow tier (PRIV003/DET004/CONC001/ABI001), findings carry `tier`.
ANALYZER_VERSION = "2"

#: Engine-level pseudo-rules (not in the registry, but valid finding ids).
PARSE_ERROR_RULE = "ANA000"
BAD_PRAGMA_RULE = "ANA001"


@dataclass(frozen=True)
class Finding:
    """One analyzer finding, after suppression/baseline resolution."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    status: str = "open"  # open | suppressed | baselined
    justification: str = ""
    fingerprint: str = ""
    snippet: str = ""
    #: Which analysis tier produced it: "ast" (per-line pattern rules) or
    #: "flow" (CFG/symbol-graph rules).  Schema v2 field.
    tier: str = "ast"

    def sort_key(self) -> Tuple:
        return (self.path, self.line, self.col, self.rule)

    def to_dict(self) -> Dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "status": self.status,
            "justification": self.justification,
            "fingerprint": self.fingerprint,
            "snippet": self.snippet,
            "tier": self.tier,
        }

    @staticmethod
    def from_dict(data: Dict) -> "Finding":
        return Finding(**data)


class Rule:
    """Base class: subclasses set the metadata and implement :meth:`check`."""

    id: str = ""
    title: str = ""
    #: Historical bug this rule guards against (shown in --list-rules).
    rationale: str = ""
    #: "ast" rules see one file's tree; "flow" rules additionally receive
    #: the pass-1 AnalysisContext (symbol graph + native sources).
    tier: str = "ast"
    #: Path suffixes (posix) where this rule does not apply.
    exempt_path_suffixes: Tuple[str, ...] = ()

    def applies_to(self, path: str) -> bool:
        posix = path.replace("\\", "/")
        return not any(posix.endswith(s) for s in self.exempt_path_suffixes)

    def check(self, tree: ast.AST, path: str) -> Iterator[Tuple[int, int, str]]:
        raise NotImplementedError


# ---------------------------------------------------------------------------
# shared AST helpers


def dotted_name(node: ast.AST) -> Optional[str]:
    """Render ``a.b.c`` attribute chains; None for anything else."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


@dataclass
class ImportContext:
    """Module aliases relevant to the RNG rules."""

    numpy_random: Set[str] = field(default_factory=set)  # "np.random", ...
    stdlib_random: Set[str] = field(default_factory=set)  # "random", aliases
    os_aliases: Set[str] = field(default_factory=set)
    #: names imported directly, e.g. {"default_rng": "numpy.random.default_rng"}
    from_imports: Dict[str, str] = field(default_factory=dict)

    @staticmethod
    def scan(tree: ast.AST) -> "ImportContext":
        ctx = ImportContext()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    name, bound = alias.name, alias.asname or alias.name
                    if name == "numpy":
                        ctx.numpy_random.add(f"{bound}.random")
                    elif name == "numpy.random":
                        # "import numpy.random" binds "numpy"
                        ctx.numpy_random.add(
                            f"{alias.asname}" if alias.asname else "numpy.random"
                        )
                    elif name == "random":
                        ctx.stdlib_random.add(bound)
                    elif name == "os":
                        ctx.os_aliases.add(bound)
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    bound = alias.asname or alias.name
                    ctx.from_imports[bound] = f"{node.module}.{alias.name}"
        return ctx


# ---------------------------------------------------------------------------
# DET001


#: numpy.random attributes that are not process-global state.
_NP_RANDOM_SAFE = {"Generator", "SeedSequence", "BitGenerator", "PCG64"}


class UnseededRandomness(Rule):
    id = "DET001"
    title = "unseeded or global-state RNG construction"
    rationale = (
        "Unseeded generators break run-to-run reproducibility silently; "
        "every entry point threads an explicit rng, with "
        "repro.core.rng.fallback_rng() as the one annotated OS-entropy sink."
    )

    def check(self, tree, path):
        ctx = ImportContext.scan(tree)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            resolved = ctx.from_imports.get(name, name)
            no_args = not node.args and not node.keywords
            for root in ctx.numpy_random:
                if not name.startswith(root + "."):
                    continue
                attr = name[len(root) + 1 :]
                if attr in _NP_RANDOM_SAFE:
                    break
                if attr in ("default_rng", "RandomState"):
                    if no_args:
                        yield (
                            node.lineno,
                            node.col_offset,
                            f"unseeded {name}(): thread an explicit rng or "
                            "use repro.core.rng.fallback_rng()",
                        )
                else:
                    yield (
                        node.lineno,
                        node.col_offset,
                        f"{name}() uses numpy's process-global RNG state; "
                        "construct a Generator and thread it explicitly",
                    )
                break
            else:
                if resolved == "numpy.random.default_rng" and no_args:
                    yield (
                        node.lineno,
                        node.col_offset,
                        "unseeded default_rng(): thread an explicit rng or "
                        "use repro.core.rng.fallback_rng()",
                    )
                elif "." in name and name.split(".", 1)[0] in ctx.stdlib_random:
                    attr = name.split(".", 1)[1]
                    if attr == "Random":
                        if no_args:
                            yield (
                                node.lineno,
                                node.col_offset,
                                "unseeded random.Random(): pass an explicit "
                                "seed",
                            )
                    elif "." not in attr:
                        yield (
                            node.lineno,
                            node.col_offset,
                            f"{name}() uses the stdlib's process-global RNG "
                            "state; use a seeded random.Random or a numpy "
                            "Generator",
                        )


# ---------------------------------------------------------------------------
# DET002


class BuiltinHashOutsideDunder(Rule):
    id = "DET002"
    title = "builtin hash() outside __hash__"
    rationale = (
        "String hashing is PYTHONHASHSEED-salted: hash(name)-derived seeds "
        "or orderings change per process (the fig12-15 baseline-seeding "
        "bug).  Use zlib.crc32 / stable_fingerprint() for anything that "
        "crosses a process boundary; hash() only inside __hash__."
    )

    def check(self, tree, path):
        yield from self._walk(tree, in_dunder_hash=False)

    def _walk(self, node, in_dunder_hash):
        for child in ast.iter_child_nodes(node):
            inside = in_dunder_hash
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                inside = in_dunder_hash or child.name == "__hash__"
            if (
                isinstance(child, ast.Call)
                and isinstance(child.func, ast.Name)
                and child.func.id == "hash"
                and not in_dunder_hash
            ):
                yield (
                    child.lineno,
                    child.col_offset,
                    "builtin hash() is PYTHONHASHSEED-salted for "
                    "str/bytes-bearing values; use zlib.crc32 or a stable "
                    "fingerprint helper outside __hash__",
                )
            yield from self._walk(child, inside)


# ---------------------------------------------------------------------------
# DET003


_RNGISH = re.compile(r"(^|_)rng($|_)|random|seed", re.IGNORECASE)


def _is_unordered_iterable(node: ast.AST, ctx: ImportContext) -> Optional[str]:
    """Describe ``node`` if iterating it has nondeterministic order."""
    if isinstance(node, ast.Set):
        return "a set literal"
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        if name in ("set", "frozenset"):
            return f"{name}()"
        if name is not None:
            resolved = ctx.from_imports.get(name, name)
            root = name.split(".", 1)[0]
            if (
                resolved in ("os.listdir", "os.scandir")
                or (root in ctx.os_aliases and name.endswith((".listdir", ".scandir")))
            ):
                return f"{name}() (filesystem order)"
            if name.endswith(".iterdir"):
                return f"{name}() (filesystem order)"
    return None


def _feeds_accumulation(body: Sequence[ast.stmt]) -> Optional[str]:
    """Why a loop body is order-sensitive, or None."""
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.AugAssign):
                return "numeric accumulation (augmented assignment)"
            if isinstance(node, ast.Call):
                name = dotted_name(node.func) or ""
                leaf = name.split(".")[0]
                if "." in name and _RNGISH.search(leaf):
                    return f"RNG state ({name}())"
                if name == "hash":
                    return "hash() of the iteration variable"
    return None


_ACCUMULATORS = {"sum", "fsum", "math.fsum", "np.sum", "numpy.sum", "np.add.reduce"}


class UnorderedIterationFeedingState(Rule):
    id = "DET003"
    title = "unordered iteration feeding numeric accumulation or RNG state"
    rationale = (
        "set/os.listdir iteration order depends on PYTHONHASHSEED or the "
        "filesystem; folding it into float sums or RNG draws makes results "
        "process-dependent.  Iterate sorted(...) instead."
    )

    def check(self, tree, path):
        ctx = ImportContext.scan(tree)
        for node in ast.walk(tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                what = _is_unordered_iterable(node.iter, ctx)
                if what is None:
                    continue
                if "filesystem order" in what:
                    yield (
                        node.iter.lineno,
                        node.iter.col_offset,
                        f"iterating {what} is nondeterministic; wrap in "
                        "sorted(...)",
                    )
                    continue
                why = _feeds_accumulation(node.body)
                if why is not None:
                    yield (
                        node.iter.lineno,
                        node.iter.col_offset,
                        f"iterating {what} feeds {why}; iteration order is "
                        "PYTHONHASHSEED-dependent for str keys — iterate "
                        "sorted(...) instead",
                    )
            elif isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name not in _ACCUMULATORS or not node.args:
                    continue
                arg = node.args[0]
                candidates = [arg]
                if isinstance(arg, (ast.GeneratorExp, ast.ListComp, ast.SetComp)):
                    candidates = [g.iter for g in arg.generators]
                for cand in candidates:
                    what = _is_unordered_iterable(cand, ctx)
                    if what is not None:
                        yield (
                            node.lineno,
                            node.col_offset,
                            f"{name}() over {what}: float accumulation order "
                            "is nondeterministic — sort first",
                        )
                        break


# ---------------------------------------------------------------------------
# PRIV001


_EPS_TOKEN = re.compile(r"^(eps|epsilon)\d*$")

#: Final tokens marking an ordinal/count over budgets, not a budget value
#: (``eps_idx`` indexes an ε grid; arithmetic on it is loop bookkeeping).
_ORDINAL_TOKENS = {"idx", "index", "i", "j", "num", "count", "pos", "position"}


def is_budget_name(identifier: str) -> bool:
    """True for ε/budget-bearing identifiers (epsilon, eps2, eps_child...)."""
    tokens = identifier.lower().split("_")
    if tokens[-1] in _ORDINAL_TOKENS:
        return False
    return any(
        _EPS_TOKEN.match(token) or token == "budget" for token in tokens
    )


def _budget_leaf(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name) and is_budget_name(node.id):
        return node.id
    if isinstance(node, ast.Attribute) and is_budget_name(node.attr):
        return node.attr
    return None


class RawBudgetArithmetic(Rule):
    id = "PRIV001"
    title = "raw ε arithmetic outside the accountant"
    rationale = (
        "Every ε split must flow through repro.dp.accountant helpers "
        "(split_epsilon, split_epsilon_even, scale_for_group_privacy) so "
        "the serving-ledger arc has a single budget choke point and "
        "Algorithm 1's never-exceed-ε invariant stays auditable."
    )
    exempt_path_suffixes = ("dp/accountant.py", "dp/mechanisms.py")

    def check(self, tree, path):
        seen: Set[Tuple[int, int]] = set()
        for node in ast.walk(tree):
            operands: List[ast.AST] = []
            if isinstance(node, ast.BinOp):
                operands = [node.left, node.right]
            elif isinstance(node, ast.AugAssign):
                operands = [node.target, node.value]
            else:
                continue
            for operand in operands:
                name = _budget_leaf(operand)
                if name is None:
                    continue
                key = (node.lineno, node.col_offset)
                if key in seen:
                    break
                seen.add(key)
                yield (
                    node.lineno,
                    node.col_offset,
                    f"arithmetic on budget parameter {name!r} outside "
                    "repro.dp: route splits through split_epsilon/"
                    "split_epsilon_even/scale_for_group_privacy (or annotate "
                    "a deliberate formula)",
                )
                break


# ---------------------------------------------------------------------------
# PRIV002


def _scale_expression(node: ast.Call) -> Optional[ast.AST]:
    """The scale argument of a noise call, if this is one."""
    name = dotted_name(node.func) or ""
    leaf = name.split(".")[-1]
    if leaf == "laplace_noise":
        for kw in node.keywords:
            if kw.arg == "scale":
                return kw.value
        return node.args[0] if node.args else None
    if leaf == "laplace" and "." in name:  # rng.laplace / np.random.laplace
        for kw in node.keywords:
            if kw.arg == "scale":
                return kw.value
        return node.args[1] if len(node.args) > 1 else None
    return None


class NoiseScaleBypassesSensitivity(Rule):
    id = "PRIV002"
    title = "noise scale expression bypasses the sensitivity helpers"
    rationale = (
        "A wrong inline scale (dropped sensitivity factor, inverted ratio) "
        "breaks the ε-DP guarantee invisibly; scales must come from "
        "laplace_scale(sensitivity, epsilon) / laplace_mechanism or a "
        "precomputed variable."
    )
    exempt_path_suffixes = ("dp/accountant.py", "dp/mechanisms.py")

    def check(self, tree, path):
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            scale = _scale_expression(node)
            if scale is None:
                continue
            if isinstance(scale, (ast.Name, ast.Attribute, ast.Constant)):
                continue
            if isinstance(scale, ast.UnaryOp) and isinstance(
                scale.operand, ast.Constant
            ):
                continue  # e.g. laplace_noise(-1.0, ...) validation tests
            if isinstance(scale, ast.Call):
                scale_name = dotted_name(scale.func) or ""
                leaf = scale_name.split(".")[-1]
                if "scale" in leaf or "sensitivity" in leaf:
                    continue
            yield (
                node.lineno,
                node.col_offset,
                "noise scale is an inline expression; derive it via "
                "repro.dp.mechanisms.laplace_scale(sensitivity, epsilon) "
                "or pass a named precomputed scale",
            )


# ---------------------------------------------------------------------------
# NUM001


_PRODUCT_FUNCS = {
    "np.prod",
    "np.cumprod",
    "numpy.prod",
    "numpy.cumprod",
    "math.prod",
}

_SAFE_DTYPES = {"object", "float", "np.float64", "numpy.float64"}


class UnguardedDomainProduct(Rule):
    id = "NUM001"
    title = "unguarded product over size arrays"
    rationale = (
        "np.prod over domain sizes wraps silently past int64 (the "
        "flatten_index/domain_size overflow bug); use "
        "repro.data.marginals.domain_size (exact Python ints + "
        "ensure_int64_domain) or an explicit overflow-safe dtype."
    )

    def check(self, tree, path):
        ctx = ImportContext.scan(tree)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            resolved = ctx.from_imports.get(name, name)
            if name not in _PRODUCT_FUNCS and resolved not in (
                "math.prod",
                "numpy.prod",
                "numpy.cumprod",
            ):
                continue
            dtype = next(
                (kw.value for kw in node.keywords if kw.arg == "dtype"), None
            )
            if dtype is not None:
                dtype_name = dotted_name(dtype)
                if dtype_name in _SAFE_DTYPES:
                    continue
            yield (
                node.lineno,
                node.col_offset,
                f"{name}() can overflow int64 silently on wide domains; use "
                "repro.data.marginals.domain_size (exact, guarded) or pass "
                "an overflow-safe dtype (object/float64)",
            )


# ---------------------------------------------------------------------------
# registry


def ast_rules() -> List[Rule]:
    """The per-file pattern tier (tier="ast")."""
    return [
        UnseededRandomness(),
        BuiltinHashOutsideDunder(),
        UnorderedIterationFeedingState(),
        RawBudgetArithmetic(),
        NoiseScaleBypassesSensitivity(),
        UnguardedDomainProduct(),
    ]


# The flow tier lives in flow_rules.py, which imports Rule & helpers from
# this module; importing it at the bottom (everything it needs is already
# defined) keeps the registry whole without a package-level cycle.
from repro.analysis.flow_rules import flow_rules as _flow_rules  # noqa: E402


def default_rules() -> List[Rule]:
    return ast_rules() + _flow_rules()


RULES: Dict[str, Rule] = {rule.id: rule for rule in default_rules()}

#: Every id a pragma may reference.
KNOWN_RULE_IDS = frozenset(RULES) | {PARSE_ERROR_RULE, BAD_PRAGMA_RULE}

__all__ = [
    "ANALYZER_VERSION",
    "BAD_PRAGMA_RULE",
    "Finding",
    "KNOWN_RULE_IDS",
    "PARSE_ERROR_RULE",
    "RULES",
    "Rule",
    "ast_rules",
    "default_rules",
    "dotted_name",
    "is_budget_name",
]
