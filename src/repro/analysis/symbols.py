"""Project-wide symbol and import graph (pass 1 of the two-pass run).

The AST tier matches helpers by their *string* names, which breaks the
moment a helper is imported under an alias (``from repro.dp.accountant
import split_epsilon as se``) or re-exported through a package
``__init__``.  The flow tier instead resolves every name to the module
that actually defines it: pass 1 parses each file once, records its
top-level definitions and import bindings, and :class:`SymbolGraph`
follows import chains (including re-exports) to a fully-qualified
origin like ``repro.dp.accountant.split_epsilon``.

The graph is a plain picklable value (``--jobs`` workers receive it by
fork/pickle) and exposes a deterministic :meth:`SymbolGraph.fingerprint`
that the result cache folds into its signature — so a cross-file change
(a helper moving between modules) invalidates cached flow-tier findings
even though the analyzed file's own bytes never changed.
"""

from __future__ import annotations

import ast
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

#: Import chains longer than this are cyclic re-exports; resolution stops.
_MAX_CHAIN = 32


def module_name_for(path: str) -> str:
    """Dotted module name for a repo-relative posix path.

    ``src/`` is the import root (``src/repro/dp/accountant.py`` →
    ``repro.dp.accountant``); package ``__init__.py`` files name the
    package itself; files outside ``src/`` (tests, benchmarks, examples)
    get path-derived names so they participate in the graph without
    colliding with importable modules.
    """
    posix = path.replace("\\", "/")
    if posix.endswith(".py"):
        posix = posix[: -len(".py")]
    if posix.startswith("src/"):
        posix = posix[len("src/") :]
    parts = [part for part in posix.split("/") if part]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


@dataclass
class ModuleSymbols:
    """One module's top-level definitions and import bindings."""

    module: str
    path: str
    #: name -> kind ("function" | "class" | "assign")
    defs: Dict[str, str] = field(default_factory=dict)
    #: local binding -> imported dotted target.  ``import numpy as np``
    #: binds ``np -> numpy``; ``from repro.dp import accountant`` binds
    #: ``accountant -> repro.dp.accountant``; ``from .rules import Rule``
    #: binds ``Rule -> repro.analysis.rules.Rule`` (relative resolved).
    imports: Dict[str, str] = field(default_factory=dict)

    @staticmethod
    def scan(module: str, path: str, tree: ast.Module) -> "ModuleSymbols":
        out = ModuleSymbols(module=module, path=path)
        package = module.rsplit(".", 1)[0] if "." in module else ""
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                out.defs[node.name] = "function"
            elif isinstance(node, ast.ClassDef):
                out.defs[node.name] = "class"
            elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if isinstance(target, ast.Name):
                        out.defs.setdefault(target.id, "assign")
                    elif isinstance(target, ast.Tuple):
                        for element in target.elts:
                            if isinstance(element, ast.Name):
                                out.defs.setdefault(element.id, "assign")
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".", 1)[0]
                    target = alias.name if alias.asname else bound
                    out.imports[bound] = target
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if node.level:
                    # Relative import: climb from this module's package.
                    anchor = module if path.endswith("__init__.py") else package
                    parts = anchor.split(".") if anchor else []
                    climb = node.level - 1
                    if climb:
                        parts = parts[:-climb] if climb <= len(parts) else []
                    base = ".".join(parts + ([base] if base else []))
                for alias in node.names:
                    if alias.name == "*":
                        continue  # star imports are not resolved
                    bound = alias.asname or alias.name
                    out.imports[bound] = (
                        f"{base}.{alias.name}" if base else alias.name
                    )
        return out


@dataclass
class SymbolGraph:
    """Name resolution over every scanned module."""

    modules: Dict[str, ModuleSymbols] = field(default_factory=dict)

    @staticmethod
    def build(sources: Iterable[Tuple[str, ast.Module]]) -> "SymbolGraph":
        """Build from ``(repo-relative path, parsed tree)`` pairs.

        Files that failed to parse are simply absent (the AST tier's
        ``ANA000`` finding covers them).
        """
        graph = SymbolGraph()
        for path, tree in sources:
            module = module_name_for(path)
            if not module:
                continue
            graph.modules[module] = ModuleSymbols.scan(module, path, tree)
        return graph

    def resolve(self, module: str, name: str) -> str:
        """Fully-qualified origin of ``name`` as seen from ``module``.

        Follows import chains through known modules (re-exports resolve
        to the defining module); names the graph knows nothing about
        come back unchanged (external libraries resolve only as far as
        their dotted import target, e.g. ``np.prod`` →
        ``numpy.prod``).
        """
        head, _, rest = name.partition(".")
        current = self.modules.get(module)
        if current is None:
            return name
        if head in current.defs and not rest:
            return f"{module}.{head}"
        target = current.imports.get(head)
        if target is None:
            if head in current.defs:
                return f"{module}.{head}" + (f".{rest}" if rest else "")
            return name
        qualified = target + (f".{rest}" if rest else "")
        return self._chase(qualified)

    def _chase(self, qualified: str) -> str:
        """Follow re-export chains until a defining module is reached."""
        for _ in range(_MAX_CHAIN):
            owner, _, leaf = qualified.rpartition(".")
            if not owner:
                return qualified
            # ``owner`` itself may be a module we know (repro.dp) whose
            # binding for ``leaf`` is an import (a re-export).
            symbols = self.modules.get(owner)
            if symbols is None:
                return qualified
            if leaf in symbols.defs:
                return qualified
            target = symbols.imports.get(leaf)
            if target is None or target == qualified:
                return qualified
            qualified = target
        return qualified

    def defining_module(self, qualified: str) -> Optional[str]:
        """The graph module defining ``qualified``, if any."""
        owner, _, leaf = qualified.rpartition(".")
        symbols = self.modules.get(owner)
        if symbols is not None and leaf in symbols.defs:
            return owner
        return None

    def fingerprint(self) -> str:
        """Deterministic digest of the whole graph (cache signature part)."""
        parts: List[str] = []
        for module in sorted(self.modules):
            symbols = self.modules[module]
            defs = ",".join(
                f"{name}:{kind}" for name, kind in sorted(symbols.defs.items())
            )
            imports = ",".join(
                f"{bound}>{target}"
                for bound, target in sorted(symbols.imports.items())
            )
            parts.append(f"{module}|{defs}|{imports}")
        digest = zlib.crc32("\n".join(parts).encode("utf-8")) & 0xFFFFFFFF
        return f"{digest:08x}"


def build_symbol_graph(
    files: Iterable[Tuple[str, str]],
) -> SymbolGraph:
    """Convenience: build from ``(repo-relative path, source text)`` pairs."""

    def parsed():
        for path, text in files:
            try:
                yield path, ast.parse(text)
            except SyntaxError:
                continue

    return SymbolGraph.build(parsed())


__all__ = [
    "ModuleSymbols",
    "SymbolGraph",
    "build_symbol_graph",
    "module_name_for",
]
