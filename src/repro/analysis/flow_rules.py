"""Flow-tier rules: dataflow/project-wide checks (PRIV003, DET004,
CONC001, ABI001).

These rules see more than one line at a time: they run over the
per-function CFGs of :mod:`repro.analysis.dataflow`, resolve helper
names through the project :class:`~repro.analysis.symbols.SymbolGraph`,
and (for ABI001) read the native C sources collected in pass 1.  Each
encodes an invariant PRs 7–9 established by hand:

* **PRIV003** — an ε-bearing parameter must not reach a noise call or
  table access unless an ``accountant.spend``/``charge`` dominates the
  access (the PR 8 reserve-before-touching tripwire), and a ``spend``
  followed by a fallible effect must ``unwind`` on the failure path.
* **DET004** — one ``numpy`` ``Generator`` must not be drawn from in
  two sibling loops (coupled series) or handed to a parallel map;
  independent series take ``rng.spawn()`` streams (the PR 7 sampler's
  chunk-invariance discipline, previously convention only).
* **CONC001** — state written under ``with self._lock`` in one method
  must not be touched off-lock in another method of the same class
  (the pre-PR 8 racy ``PrivacyAccountant.spend`` check-then-append).
* **ABI001** — the exported prototypes of ``core/_native/*.c`` must
  match the ``ctypes`` declarations in ``core/kernel_backend.py`` and
  the recorded manifest for the declared ABI version; any exported-
  surface change requires a ``repro_scoref_abi_version`` bump.
"""

from __future__ import annotations

import ast
import re
import zlib
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.dataflow import (
    ENTRY,
    build_cfg,
    dominators,
    none_guard_filter,
    reaching_definitions,
)
from repro.analysis.rules import Rule, dotted_name, is_budget_name
from repro.analysis.symbols import SymbolGraph, module_name_for


# ---------------------------------------------------------------------------
# pass-1 context


@dataclass
class AnalysisContext:
    """Project-wide inputs to the flow tier (built once, in pass 1)."""

    symbols: SymbolGraph = field(default_factory=SymbolGraph)
    #: repo-relative posix path -> text of every ``_native/*.c`` source.
    native_sources: Dict[str, str] = field(default_factory=dict)

    def fingerprint(self) -> str:
        """Folds into the result-cache signature: cross-file edits (a
        helper moving modules, a C prototype change) invalidate cached
        flow findings even when the cached file itself is unchanged."""
        digest = zlib.crc32(self.symbols.fingerprint().encode("utf-8"))
        for path in sorted(self.native_sources):
            payload = f"{path}:{self.native_sources[path]}".encode("utf-8")
            digest = zlib.crc32(payload, digest)
        return f"{digest & 0xFFFFFFFF:08x}"

    def resolve(self, path: str, name: str) -> str:
        """Resolve ``name`` as seen from the module at ``path``."""
        module = module_name_for(path)
        if module and module in self.symbols.modules:
            return self.symbols.resolve(module, name)
        return name


class FlowRule(Rule):
    """Base for dataflow-tier rules (reported with ``tier="flow"``)."""

    tier = "flow"


def _functions(tree: ast.AST) -> Iterator[ast.FunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _statement_expressions(stmt: ast.stmt) -> List[ast.expr]:
    """The expressions evaluated *at* this statement's own CFG node
    (compound statements contribute only their headers; their nested
    statements are separate nodes)."""
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, ast.Try):
        return []
    out: List[ast.expr] = []
    for child in ast.iter_child_nodes(stmt):
        if isinstance(child, ast.expr):
            out.append(child)
    return out


def _own_statements(body: Sequence[ast.stmt]) -> Iterator[ast.stmt]:
    """Every statement of a function body, NOT descending into nested
    function/class definitions (those are separate scopes)."""
    for stmt in body:
        yield stmt
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        for sub_body in _sub_bodies(stmt):
            yield from _own_statements(sub_body)


def _sub_bodies(stmt: ast.stmt) -> List[List[ast.stmt]]:
    bodies: List[List[ast.stmt]] = []
    for name in ("body", "orelse", "finalbody"):
        block = getattr(stmt, name, None)
        if isinstance(block, list) and block and isinstance(block[0], ast.stmt):
            bodies.append(block)
    for handler in getattr(stmt, "handlers", []):
        bodies.append(handler.body)
    return bodies


def _calls_in(expr: ast.AST) -> Iterator[ast.Call]:
    for node in ast.walk(expr):
        if isinstance(node, ast.Call):
            yield node


# ---------------------------------------------------------------------------
# PRIV003 — budget flow


_ACCOUNTANT_NAME = re.compile(r"(^|_)acc(ountant)?($|_)|accountant", re.IGNORECASE)

#: Attribute reads that touch only the schema, not the data (the PR 8
#: TripwireTable contract: these are legal before the reservation).
_SCHEMA_ATTRS = {
    "attributes",
    "attribute_names",
    "d",
    "n",
    "names",
    "schema",
}

#: Parameter names/annotations treated as private data sources.
_TABLE_PARAM_NAMES = {"table", "tables", "data", "source", "linked", "df"}
_TABLE_ANNOTATIONS = {"Table", "ChunkedSource", "TableChunks", "LinkedTables"}

#: Calls through which passing the table is not a data access.
_INSPECTION_FUNCS = {
    "isinstance",
    "issubclass",
    "len",
    "type",
    "id",
    "repr",
    "str",
    "hasattr",
    "getattr",
}

_NOISE_FUNCS = {
    "repro.dp.mechanisms.laplace_noise",
    "repro.dp.mechanisms.laplace_mechanism",
}


def _is_accountant_param(name: str) -> bool:
    return bool(_ACCOUNTANT_NAME.search(name))


def _annotation_leaf(annotation: Optional[ast.expr]) -> str:
    if annotation is None:
        return ""
    name = dotted_name(annotation)
    if name is None and isinstance(annotation, ast.Constant):
        name = str(annotation.value)
    if name is None:
        return ""
    return name.split(".")[-1].strip("'\" ")


def _all_args(fn: ast.FunctionDef) -> List[ast.arg]:
    args = fn.args
    return list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)


def _spend_receiver(call: ast.Call) -> Optional[ast.expr]:
    """The accountant expression of a ``spend``/``charge`` call."""
    if isinstance(call.func, ast.Attribute) and call.func.attr in (
        "spend",
        "charge",
    ):
        return call.func.value
    return None


class BudgetFlow(FlowRule):
    id = "PRIV003"
    title = "ε reaches a data access with no dominating accountant charge"
    rationale = (
        "PR 8's invariant, statically: in a function holding both an "
        "ε-bearing parameter and an accountant, every noise call and "
        "table access must be dominated by accountant.spend/charge "
        "(reserve before touching data), and a spend followed by a "
        "fallible effect must unwind on the failure path — otherwise a "
        "refusal or crash lands after the data was already read."
    )

    def check(self, tree, path, context=None):
        for fn in _functions(tree):
            yield from self._check_function(fn, path, context)

    # ------------------------------------------------------------------
    def _check_function(self, fn, path, context):
        params = _all_args(fn)
        epsilon_params = {
            a.arg for a in params if is_budget_name(a.arg)
        }
        accountant_names = {
            a.arg for a in params if _is_accountant_param(a.arg)
        }
        statements = list(_own_statements(fn.body))
        # Locals bound from accountant factories also count
        # (``acc = ledger.accountant(...)``).
        for stmt in statements:
            if isinstance(stmt, ast.Assign) and isinstance(
                stmt.value, ast.Call
            ):
                func_name = dotted_name(stmt.value.func) or ""
                resolved = (
                    context.resolve(path, func_name) if context else func_name
                )
                leaf = resolved.split(".")[-1]
                if leaf == "accountant" or "Accountant" in leaf:
                    for target in stmt.targets:
                        if isinstance(target, ast.Name):
                            accountant_names.add(target.id)
        if accountant_names:
            yield from self._spend_without_unwind(fn, statements)
        if not accountant_names or not epsilon_params:
            return

        # Derived-from-ε locals that are "None iff ε is None"
        # (``share = None if epsilon2 is None else split(...)``) join the
        # assumed-not-None set, so their guards prune like the
        # accountant's own ``is not None`` guard.
        assumed = set(accountant_names)
        for stmt in statements:
            if (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and isinstance(stmt.value, ast.IfExp)
            ):
                test = stmt.value.test
                if (
                    isinstance(test, ast.Compare)
                    and len(test.ops) == 1
                    and isinstance(test.ops[0], ast.Is)
                    and isinstance(test.left, ast.Name)
                    and (
                        test.left.id in epsilon_params
                        or test.left.id in assumed
                    )
                    and isinstance(test.comparators[0], ast.Constant)
                    and test.comparators[0].value is None
                    and isinstance(stmt.value.body, ast.Constant)
                    and stmt.value.body.value is None
                ):
                    assumed.add(stmt.targets[0].id)

        table_params = {
            a.arg
            for a in params
            if a.arg in _TABLE_PARAM_NAMES
            or _annotation_leaf(a.annotation) in _TABLE_ANNOTATIONS
        }

        cfg = build_cfg(fn.body, branch_filter=_compound_guard(assumed))
        node_of = {id(stmt): i for i, stmt in enumerate(cfg.nodes) if stmt is not None}
        dom = dominators(cfg)
        spend_nodes: List[int] = []
        accesses: List[Tuple[int, int, int, str]] = []  # (node, line, col, what)
        for stmt in statements:
            node = node_of.get(id(stmt))
            if node is None:
                continue  # pruned branch: not reachable in this scenario
            for expr in _statement_expressions(stmt):
                for call in _calls_in(expr):
                    receiver = _spend_receiver(call)
                    if receiver is not None:
                        name = dotted_name(receiver)
                        if name in accountant_names or name == "self":
                            spend_nodes.append(node)
                            continue
                        # ``PrivacyAccountant.spend(self, ...)`` — an
                        # unbound-method charge on a known accountant
                        # class also counts.
                        if name and "Accountant" in name.split(".")[-1]:
                            spend_nodes.append(node)
                            continue
                    accesses.extend(
                        self._accesses_in_call(
                            call, table_params, accountant_names, path, context, node
                        )
                    )
                for access in self._attribute_accesses(expr, table_params, node):
                    accesses.append(access)
        for node, line, col, what in accesses:
            if any(spend in dom.get(node, set()) for spend in spend_nodes):
                continue
            yield (
                line,
                col,
                f"{what} is reachable with no dominating accountant "
                "spend/charge on any path from entry — reserve the budget "
                "before touching data (PR 8 invariant)",
            )

    # ------------------------------------------------------------------
    def _accesses_in_call(
        self, call, table_params, accountant_names, path, context, node
    ):
        func_name = dotted_name(call.func) or ""
        resolved = context.resolve(path, func_name) if context else func_name
        if resolved in _NOISE_FUNCS or func_name.split(".")[-1] in (
            "laplace_noise",
            "laplace_mechanism",
        ):
            yield (node, call.lineno, call.col_offset, "noise call")
            return
        if (
            isinstance(call.func, ast.Attribute)
            and call.func.attr == "laplace"
            and isinstance(call.func.value, ast.Name)
        ):
            yield (node, call.lineno, call.col_offset, "noise call")
            return
        if func_name in _INSPECTION_FUNCS:
            return
        # Charge delegation: a call handed the accountant itself owns the
        # charging (``PrivBayes(...).fit(table, rng, accountant=acc)``
        # reserves before touching data — the PR 8 contract).
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            if isinstance(arg, ast.Name) and arg.id in accountant_names:
                return
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            target = arg.value if isinstance(arg, ast.Starred) else arg
            if isinstance(target, ast.Name) and target.id in table_params:
                yield (
                    node,
                    target.lineno,
                    target.col_offset,
                    f"table parameter {target.id!r} passed to "
                    f"{func_name or 'a call'}()",
                )

    def _attribute_accesses(self, expr, table_params, node):
        for sub in ast.walk(expr):
            if (
                isinstance(sub, ast.Attribute)
                and isinstance(sub.value, ast.Name)
                and sub.value.id in table_params
                and sub.attr not in _SCHEMA_ATTRS
            ):
                yield (
                    node,
                    sub.lineno,
                    sub.col_offset,
                    f"data access {sub.value.id}.{sub.attr}",
                )
            elif (
                isinstance(sub, ast.Subscript)
                and isinstance(sub.value, ast.Name)
                and sub.value.id in table_params
            ):
                yield (
                    node,
                    sub.lineno,
                    sub.col_offset,
                    f"data access {sub.value.id}[...]",
                )

    # ------------------------------------------------------------------
    def _spend_without_unwind(self, fn, statements):
        """A spend/charge with a later try whose failure path re-raises
        without unwinding burned budget on a no-op (PR 8 ledger bug)."""
        spend_seen = False
        for stmt in statements:
            if not spend_seen:
                for expr in _statement_expressions(stmt):
                    if any(
                        _spend_receiver(call) is not None
                        for call in _calls_in(expr)
                    ):
                        spend_seen = True
                        break
            if isinstance(stmt, ast.Try) and spend_seen:
                for handler in stmt.handlers:
                    raises = any(
                        isinstance(inner, ast.Raise)
                        for body_stmt in handler.body
                        for inner in ast.walk(body_stmt)
                    )
                    unwinds = any(
                        isinstance(inner, ast.Call)
                        and isinstance(inner.func, ast.Attribute)
                        and inner.func.attr == "unwind"
                        for body_stmt in handler.body
                        for inner in ast.walk(body_stmt)
                    )
                    if raises and not unwinds:
                        yield (
                            handler.lineno,
                            handler.col_offset,
                            "failure path after an accountant spend "
                            "re-raises without unwind(): the charge is "
                            "burned although the guarded effect never "
                            "happened — call accountant.unwind() before "
                            "re-raising",
                        )


def _compound_guard(assumed: Set[str]):
    """Branch filter: ``x is (not) None`` guards over assumed-not-None
    names, composed through ``and``/``or``."""
    base = none_guard_filter(assumed)

    def decide(test: ast.expr) -> Optional[bool]:
        simple = base(test)
        if simple is not None:
            return simple
        if isinstance(test, ast.BoolOp):
            votes = [decide(value) for value in test.values]
            if isinstance(test.op, ast.And):
                if all(vote is True for vote in votes):
                    return True
                if any(vote is False for vote in votes):
                    return False
            else:  # Or
                if any(vote is True for vote in votes):
                    return True
                if all(vote is False for vote in votes):
                    return False
        return None

    return decide


# ---------------------------------------------------------------------------
# DET004 — RNG stream discipline


_RNG_PARAM = re.compile(r"(^|_)rng\d*$")

_RNG_FACTORIES = {
    "numpy.random.default_rng",
    "numpy.random.Generator",
    "repro.core.rng.fallback_rng",
}

_DRAW_METHODS = {
    "random",
    "integers",
    "choice",
    "shuffle",
    "permutation",
    "permuted",
    "laplace",
    "normal",
    "standard_normal",
    "uniform",
    "binomial",
    "poisson",
    "exponential",
    "geometric",
    "multinomial",
    "multivariate_hypergeometric",
    "bytes",
}

_EXECUTORISH = re.compile(r"executor|pool", re.IGNORECASE)

_PARALLEL_METHODS = {"map", "submit", "starmap", "imap", "imap_unordered", "apply_async"}

_EXECUTOR_FACTORIES = {
    "concurrent.futures.ThreadPoolExecutor",
    "concurrent.futures.ProcessPoolExecutor",
    "multiprocessing.Pool",
}


class RngStreamDiscipline(FlowRule):
    id = "DET004"
    title = "one Generator shared across independent series or workers"
    rationale = (
        "Drawing one Generator in two sibling loops couples the series: "
        "loop 2's stream depends on how many draws loop 1 consumed "
        "(change a chunk size, every later series shifts).  Passing one "
        "Generator into a parallel map races the stream across workers. "
        "Derive per-series/per-task streams with rng.spawn() — the PR 7 "
        "sampler's chunk-invariance discipline."
    )

    def check(self, tree, path, context=None):
        for fn in _functions(tree):
            yield from self._check_function(fn, path, context)

    # ------------------------------------------------------------------
    def _tags(self, fn, path, context) -> Tuple[Set[str], Set[str], Set[str]]:
        """(rng_names, spawn_safe_names, executor_names) for one function."""
        rng: Set[str] = {
            a.arg for a in _all_args(fn) if _RNG_PARAM.search(a.arg)
        }
        safe: Set[str] = set()
        collections: Set[str] = set()
        executors: Set[str] = set()
        for stmt in _own_statements(fn.body):
            if isinstance(stmt, ast.Assign):
                value = stmt.value
                names = [
                    t.id for t in stmt.targets if isinstance(t, ast.Name)
                ]
                tuple_targets = [
                    t for t in stmt.targets if isinstance(t, ast.Tuple)
                ]
                if isinstance(value, ast.Call):
                    func_name = dotted_name(value.func) or ""
                    resolved = (
                        context.resolve(path, func_name)
                        if context
                        else func_name
                    )
                    leaf = func_name.split(".")[-1]
                    if (
                        resolved in _RNG_FACTORIES
                        or leaf in ("default_rng", "fallback_rng")
                    ):
                        rng.update(names)
                    elif (
                        isinstance(value.func, ast.Attribute)
                        and value.func.attr == "spawn"
                    ):
                        collections.update(names)
                        for target in tuple_targets:
                            for element in target.elts:
                                if isinstance(element, ast.Name):
                                    safe.add(element.id)
                    elif (
                        resolved in _EXECUTOR_FACTORIES
                        or leaf in ("ThreadPoolExecutor", "ProcessPoolExecutor", "Pool")
                    ):
                        executors.update(names)
                elif isinstance(value, ast.Name):
                    if value.id in rng:
                        rng.update(names)
                    elif value.id in safe:
                        safe.update(names)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                self._loop_targets(stmt, collections, safe)
        return rng - safe, safe | collections, executors

    @staticmethod
    def _loop_targets(stmt, collections: Set[str], safe: Set[str]) -> None:
        """``for s in streams`` / ``for s, x in zip(streams, ...)`` bind
        independent spawned streams."""
        iterator, target = stmt.iter, stmt.target
        if isinstance(iterator, ast.Name) and iterator.id in collections:
            if isinstance(target, ast.Name):
                safe.add(target.id)
            return
        if isinstance(iterator, ast.Call):
            func = dotted_name(iterator.func)
            if func in ("zip", "enumerate") and isinstance(target, ast.Tuple):
                args = iterator.args
                offset = 1 if func == "enumerate" else 0
                for position, arg in enumerate(args):
                    if (
                        isinstance(arg, ast.Name)
                        and arg.id in collections
                        and position + offset < len(target.elts)
                        and isinstance(
                            target.elts[position + offset], ast.Name
                        )
                    ):
                        safe.add(target.elts[position + offset].id)

    # ------------------------------------------------------------------
    def _check_function(self, fn, path, context):
        rng, safe, executors = self._tags(fn, path, context)
        if not rng:
            return
        cfg = build_cfg(fn.body)
        node_of = {
            id(stmt): i for i, stmt in enumerate(cfg.nodes) if stmt is not None
        }
        reach = reaching_definitions(cfg)

        # --- sibling-loop discipline -------------------------------------
        for body in self._statement_lists(fn):
            loops = [
                stmt
                for stmt in body
                if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While))
            ]
            if len(loops) < 2:
                continue
            draws_per_loop = [
                self._draws_under(loop, rng, node_of) for loop in loops
            ]
            for later in range(1, len(loops)):
                for earlier in range(later):
                    for name, node, call in draws_per_loop[later]:
                        prior = [
                            (p_name, p_node)
                            for p_name, p_node, _ in draws_per_loop[earlier]
                            if p_name == name
                        ]
                        if not prior:
                            continue
                        defs_here = {
                            d
                            for d_name, d in reach.get(node, set())
                            if d_name == name
                        } or {ENTRY}
                        shared = False
                        for _, p_node in prior:
                            defs_there = {
                                d
                                for d_name, d in reach.get(p_node, set())
                                if d_name == name
                            } or {ENTRY}
                            if defs_here & defs_there:
                                shared = True
                                break
                        if shared:
                            yield (
                                call.lineno,
                                call.col_offset,
                                f"generator {name!r} is drawn in more than "
                                "one sibling loop; the later series' draws "
                                "depend on how many the earlier consumed — "
                                "use independent rng.spawn() streams per "
                                "series",
                            )
                            break  # one finding per (loop, name) pair
        # --- parallel-map discipline -------------------------------------
        for stmt in _own_statements(fn.body):
            for expr in _statement_expressions(stmt):
                for call in _calls_in(expr):
                    yield from self._parallel_rng(call, rng, executors)

    def _statement_lists(self, fn) -> Iterator[List[ast.stmt]]:
        yield fn.body
        for stmt in _own_statements(fn.body):
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            yield from _sub_bodies(stmt)

    def _draws_under(self, loop, rng: Set[str], node_of):
        """(name, cfg node, call) for every rng draw inside a loop."""
        out = []
        for stmt in _own_statements(loop.body):
            node = node_of.get(id(stmt))
            if node is None:
                continue
            for expr in _statement_expressions(stmt):
                for call in _calls_in(expr):
                    if (
                        isinstance(call.func, ast.Attribute)
                        and call.func.attr in _DRAW_METHODS
                        and isinstance(call.func.value, ast.Name)
                        and call.func.value.id in rng
                    ):
                        out.append((call.func.value.id, node, call))
        return out

    def _parallel_rng(self, call, rng: Set[str], executors: Set[str]):
        if not isinstance(call.func, ast.Attribute):
            return
        method = call.func.attr
        receiver = dotted_name(call.func.value) or ""
        is_parallel = method in _PARALLEL_METHODS and (
            receiver.split(".")[-1] in executors
            or _EXECUTORISH.search(receiver)
        )
        args = list(call.args) + [kw.value for kw in call.keywords]
        if method == "run_in_executor":
            is_parallel = True
            args = call.args[2:]
        if not is_parallel:
            return
        for arg in args:
            target = arg.value if isinstance(arg, ast.Starred) else arg
            for sub in ast.walk(target):
                if isinstance(sub, ast.Name) and sub.id in rng:
                    yield (
                        sub.lineno,
                        sub.col_offset,
                        f"generator {sub.id!r} passed into a parallel "
                        "map shares one stream across workers — spawn a "
                        "per-task stream (rng.spawn) or pass seeds",
                    )
                    return


# ---------------------------------------------------------------------------
# CONC001 — lock discipline


_LOCK_FACTORIES = {"threading.Lock", "threading.RLock", "Lock", "RLock"}

_MUTATORS = {
    "append",
    "appendleft",
    "add",
    "clear",
    "discard",
    "extend",
    "extendleft",
    "insert",
    "pop",
    "popitem",
    "popleft",
    "remove",
    "reverse",
    "setdefault",
    "sort",
    "update",
}

_INIT_LIKE = {
    "__init__",
    "__post_init__",
    "__new__",
    "__getstate__",
    "__setstate__",
    "__copy__",
    "__deepcopy__",
    "__reduce__",
    "__del__",
}


@dataclass
class _Access:
    attr: str
    kind: str  # "read" | "write"
    locked: bool
    method: str
    line: int
    col: int


class LockDiscipline(FlowRule):
    id = "CONC001"
    title = "lock-guarded attribute touched off-lock in a sibling method"
    rationale = (
        "An attribute written under `with self._lock` in one method is "
        "shared mutable state; reading or writing it in another method "
        "without the lock reintroduces the pre-PR 8 racy "
        "PrivacyAccountant.spend (check-then-append overdraw).  "
        "Methods suffixed `_locked` assert the caller holds the lock "
        "and are exempt; construction (`__init__` and helpers called "
        "only from it) happens before publication and is exempt."
    )

    def check(self, tree, path, context=None):
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(node)

    # ------------------------------------------------------------------
    def _check_class(self, cls: ast.ClassDef):
        methods = {
            stmt.name: stmt
            for stmt in cls.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        if not methods:
            return
        class_level_names = set(methods)
        for stmt in cls.body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        class_level_names.add(target.id)

        lock_attrs = self._lock_attributes(methods.values())
        if not lock_attrs:
            return
        exempt = self._init_reachable_only(methods)

        accesses: List[_Access] = []
        for name, method in methods.items():
            if name in exempt or name.endswith("_locked"):
                continue
            local_aliases = self._lock_aliases(method, lock_attrs)
            self._collect(
                method.body,
                held=False,
                method=name,
                lock_attrs=lock_attrs | local_aliases,
                skip_names=class_level_names,
                out=accesses,
            )

        guarded = {
            access.attr
            for access in accesses
            if access.kind == "write" and access.locked
        }
        if not guarded:
            return
        writing_methods = {
            access.method for access in accesses if access.kind == "write"
        }
        reported: Set[Tuple[str, int]] = set()
        for access in accesses:
            if access.locked or access.attr not in guarded:
                continue
            if access.kind == "read" and access.method not in writing_methods:
                # A lone snapshot read (e.g. a monitoring property) is a
                # benign race; check-then-act shapes are not.
                continue
            key = (access.attr, access.line)
            if key in reported:
                continue
            reported.add(key)
            yield (
                access.line,
                access.col,
                f"self.{access.attr} is written under a lock elsewhere in "
                f"class {cls.name} but {access.kind} here without holding "
                "it — take the lock (or rename the method *_locked if the "
                "caller must hold it)",
            )

    # ------------------------------------------------------------------
    def _lock_attributes(self, methods) -> Set[str]:
        locks: Set[str] = set()
        for method in methods:
            annotated = {
                a.arg
                for a in _all_args(method)
                if _annotation_leaf(a.annotation) in ("Lock", "RLock")
            }
            for stmt in _own_statements(method.body):
                # self.X = threading.Lock()  /  self.X = <Lock-annotated param>
                if isinstance(stmt, ast.Assign):
                    for target in stmt.targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            value = stmt.value
                            if (
                                isinstance(value, ast.Call)
                                and (dotted_name(value.func) or "")
                                in _LOCK_FACTORIES
                            ):
                                locks.add(target.attr)
                            elif (
                                isinstance(value, ast.Name)
                                and value.id in annotated
                            ):
                                locks.add(target.attr)
                # with self.X: ...
                if isinstance(stmt, (ast.With, ast.AsyncWith)):
                    for item in stmt.items:
                        expr = item.context_expr
                        if (
                            isinstance(expr, ast.Attribute)
                            and isinstance(expr.value, ast.Name)
                            and expr.value.id == "self"
                            and "lock" in expr.attr.lower()
                        ):
                            locks.add(expr.attr)
        return locks

    def _lock_aliases(self, method, lock_attrs: Set[str]) -> Set[str]:
        """Local ``lock = self._lock`` aliases (treated as the lock)."""
        aliases: Set[str] = set()
        for stmt in _own_statements(method.body):
            if (
                isinstance(stmt, ast.Assign)
                and isinstance(stmt.value, ast.Attribute)
                and isinstance(stmt.value.value, ast.Name)
                and stmt.value.value.id == "self"
                and stmt.value.attr in lock_attrs
            ):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        aliases.add(target.id)
        return aliases

    def _holds_lock(self, stmt, lock_attrs: Set[str]) -> bool:
        for item in stmt.items:
            expr = item.context_expr
            if (
                isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)
                and expr.value.id == "self"
                and expr.attr in lock_attrs
            ):
                return True
            if isinstance(expr, ast.Name) and expr.id in lock_attrs:
                return True
        return False

    def _collect(self, body, held, method, lock_attrs, skip_names, out):
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # A nested callback runs later, when the lock is no
                # longer held.
                self._collect(
                    stmt.body, False, method, lock_attrs, skip_names, out
                )
                continue
            if isinstance(stmt, ast.ClassDef):
                continue
            now_held = held
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                now_held = held or self._holds_lock(stmt, lock_attrs)
            self._record_statement(stmt, held, method, skip_names, out)
            for sub_body in _sub_bodies(stmt):
                self._collect(
                    sub_body, now_held, method, lock_attrs, skip_names, out
                )

    def _record_statement(self, stmt, held, method, skip_names, out):
        writes: List[Tuple[str, int, int]] = []
        write_node_ids: Set[int] = set()

        def self_attr(node) -> Optional[ast.Attribute]:
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
            ):
                return node
            return None

        def mark_write(node) -> None:
            attr = self_attr(node)
            if attr is None and isinstance(node, ast.Subscript):
                attr = self_attr(node.value)
            if attr is not None:
                writes.append((attr.attr, attr.lineno, attr.col_offset))
                write_node_ids.add(id(attr))

        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                self._mark_targets(target, mark_write)
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            self._mark_targets(stmt.target, mark_write)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                mark_write(target)
        for expr in _statement_expressions(stmt):
            for call in _calls_in(expr):
                if (
                    isinstance(call.func, ast.Attribute)
                    and call.func.attr in _MUTATORS
                ):
                    attr = self_attr(call.func.value)
                    if attr is not None:
                        writes.append(
                            (attr.attr, attr.lineno, attr.col_offset)
                        )
                        write_node_ids.add(id(attr))
        written_attrs = {name for name, _, _ in writes}
        for name, line, col in writes:
            if name in skip_names:
                continue
            out.append(_Access(name, "write", held, method, line, col))
        # Reads: every other self.<attr> load in this statement's own
        # expressions (method calls excluded via skip_names).
        for expr in _statement_expressions(stmt):
            for node in ast.walk(expr):
                attr = self_attr(node)
                if (
                    attr is not None
                    and id(attr) not in write_node_ids
                    and attr.attr not in skip_names
                    and attr.attr not in written_attrs
                    and isinstance(attr.ctx, ast.Load)
                ):
                    out.append(
                        _Access(
                            attr.attr,
                            "read",
                            held,
                            method,
                            attr.lineno,
                            attr.col_offset,
                        )
                    )

    @staticmethod
    def _mark_targets(target, mark_write) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                LockDiscipline._mark_targets(element, mark_write)
        elif isinstance(target, ast.Starred):
            LockDiscipline._mark_targets(target.value, mark_write)
        else:
            mark_write(target)

    # ------------------------------------------------------------------
    @staticmethod
    def _init_reachable_only(methods) -> Set[str]:
        """Init-like methods plus helpers called *only* from them."""
        calls: Dict[str, Set[str]] = {}
        for name, method in methods.items():
            called: Set[str] = set()
            for node in ast.walk(method):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == "self"
                    and node.func.attr in methods
                ):
                    called.add(node.func.attr)
            calls[name] = called
        exempt = {name for name in methods if name in _INIT_LIKE}
        changed = True
        while changed:
            changed = False
            for name in methods:
                if name in exempt:
                    continue
                callers = {
                    caller for caller, called in calls.items() if name in called
                }
                if callers and callers <= exempt:
                    exempt.add(name)
                    changed = True
        return exempt


# ---------------------------------------------------------------------------
# ABI001 — native ABI drift


#: The recorded exported surface per ABI version.  Changing
#: ``_native/*.c``'s exports requires bumping REPRO_SCOREF_ABI /
#: ``kernel_backend.ABI_VERSION`` *and* recording the new surface here —
#: that ritual is exactly what makes silent C-side drift impossible.
ABI_MANIFEST: Dict[int, Dict[str, Tuple[str, Tuple[str, ...]]]] = {
    1: {
        "repro_scoref_abi_version": ("int64_t", ()),
        "repro_score_f_batch": (
            "int",
            (
                "int64_t*",
                "int64_t*",
                "int64_t",
                "int64_t",
                "int64_t",
                "double*",
            ),
        ),
    },
}

_C_EXPORT = re.compile(
    r"(?m)^(?P<ret>int64_t|int|double|void)\s+(?P<name>repro_\w+)\s*\("
)

_C_ABI_DEFINE = re.compile(r"#define\s+REPRO_\w*ABI\w*\s+(\d+)")

_CTYPES_TOKENS = {
    "c_int64": "int64_t",
    "c_int": "int",
    "c_double": "double",
    "c_size_t": "size_t",
    "c_float": "float",
    "c_int32": "int32_t",
    "c_uint64": "uint64_t",
}


def parse_c_exports(text: str) -> Dict[str, Tuple[str, Tuple[str, ...]]]:
    """Exported ``repro_*`` prototypes of one C source."""
    exports: Dict[str, Tuple[str, Tuple[str, ...]]] = {}
    for match in _C_EXPORT.finditer(text):
        start = match.end()
        end = text.find(")", start)
        if end < 0:
            continue
        params = text[start:end]
        tokens: List[str] = []
        for raw in params.split(","):
            raw = raw.strip()
            if not raw or raw == "void":
                continue
            pointer = "*" in raw
            words = [
                word
                for word in raw.replace("*", " ").split()
                if word not in ("const", "restrict")
            ]
            if not words:
                continue
            tokens.append(words[0] + ("*" if pointer else ""))
        exports[match.group("name")] = (match.group("ret"), tuple(tokens))
    return exports


def parse_c_abi_version(text: str) -> Optional[int]:
    match = _C_ABI_DEFINE.search(text)
    return int(match.group(1)) if match else None


def _ctype_token(node: ast.expr) -> Optional[str]:
    name = dotted_name(node)
    if name is not None:
        leaf = name.split(".")[-1]
        return _CTYPES_TOKENS.get(leaf)
    if isinstance(node, ast.Call):
        func = dotted_name(node.func) or ""
        if func.split(".")[-1] == "POINTER" and node.args:
            inner = _ctype_token(node.args[0])
            return f"{inner}*" if inner else None
    return None


@dataclass
class _PyDecl:
    symbol: str
    restype: Optional[str] = None
    restype_line: int = 0
    argtypes: Optional[Tuple[str, ...]] = None
    argtypes_line: int = 0


def parse_ctypes_declarations(tree: ast.AST) -> Tuple[Optional[int], int, Dict[str, _PyDecl]]:
    """(ABI_VERSION value, its line, symbol -> declared prototype)."""
    version: Optional[int] = None
    version_line = 1
    for node in tree.body if isinstance(tree, ast.Module) else []:
        if (
            isinstance(node, ast.Assign)
            and any(
                isinstance(t, ast.Name) and t.id == "ABI_VERSION"
                for t in node.targets
            )
            and isinstance(node.value, ast.Constant)
            and isinstance(node.value.value, int)
        ):
            version = node.value.value
            version_line = node.lineno
    aliases: Dict[str, str] = {}
    declarations: Dict[str, _PyDecl] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if (
            isinstance(target, ast.Name)
            and isinstance(node.value, ast.Attribute)
            and node.value.attr.startswith("repro_")
        ):
            aliases[target.id] = node.value.attr
        elif isinstance(target, ast.Attribute) and isinstance(
            target.value, ast.Name
        ):
            symbol = aliases.get(target.value.id)
            if symbol is None:
                continue
            declaration = declarations.setdefault(symbol, _PyDecl(symbol))
            if target.attr == "restype":
                declaration.restype = _ctype_token(node.value) or "?"
                declaration.restype_line = node.lineno
            elif target.attr == "argtypes":
                if isinstance(node.value, (ast.List, ast.Tuple)):
                    tokens = tuple(
                        _ctype_token(element) or "?"
                        for element in node.value.elts
                    )
                    declaration.argtypes = tokens
                declaration.argtypes_line = node.lineno
    return version, version_line, declarations


def _render(prototype: Tuple[str, Tuple[str, ...]]) -> str:
    restype, args = prototype
    return f"{restype}({', '.join(args) or 'void'})"


class NativeAbiDrift(FlowRule):
    id = "ABI001"
    title = "native kernel ABI drift (C prototypes vs ctypes declarations)"
    rationale = (
        "kernel_backend.py drives _native/*.c through a flat ctypes ABI; "
        "a C-side prototype change the Python declarations (or the "
        "recorded ABI manifest) did not follow silently corrupts every "
        "score.  Any exported-surface change must bump "
        "repro_scoref_abi_version / ABI_VERSION and re-record the "
        "surface in flow_rules.ABI_MANIFEST."
    )

    def applies_to(self, path: str) -> bool:
        return path.replace("\\", "/").endswith("core/kernel_backend.py")

    def check(self, tree, path, context=None):
        if context is None or not context.native_sources:
            return  # single-file run: no C sources collected
        python_version, version_line, declarations = parse_ctypes_declarations(
            tree
        )
        c_exports: Dict[str, Tuple[str, Tuple[str, ...]]] = {}
        for source_path in sorted(context.native_sources):
            text = context.native_sources[source_path]
            c_exports.update(parse_c_exports(text))
            c_version = parse_c_abi_version(text)
            if (
                c_version is not None
                and python_version is not None
                and c_version != python_version
            ):
                yield (
                    version_line,
                    0,
                    f"ABI_VERSION={python_version} disagrees with "
                    f"{source_path}'s #define ({c_version}) — bump both "
                    "together",
                )
        for symbol in sorted(declarations):
            declaration = declarations[symbol]
            line = declaration.argtypes_line or declaration.restype_line or 1
            if symbol not in c_exports:
                yield (
                    line,
                    0,
                    f"ctypes declaration for {symbol!r} has no matching "
                    "exported prototype in the native sources",
                )
                continue
            declared = (
                declaration.restype or "?",
                declaration.argtypes if declaration.argtypes is not None else (),
            )
            if declared != c_exports[symbol]:
                yield (
                    line,
                    0,
                    f"{symbol!r} signature drift: ctypes declares "
                    f"{_render(declared)} but the C source exports "
                    f"{_render(c_exports[symbol])} — fix the declaration "
                    "and bump the ABI version",
                )
        for symbol in sorted(set(c_exports) - set(declarations)):
            yield (
                version_line,
                0,
                f"native source exports {symbol!r} with no ctypes "
                "declaration here — declare argtypes/restype (and bump "
                "the ABI version for a surface change)",
            )
        if python_version is not None:
            manifest = ABI_MANIFEST.get(python_version)
            if manifest is None:
                yield (
                    version_line,
                    0,
                    f"ABI version {python_version} is not recorded in "
                    "flow_rules.ABI_MANIFEST — record the exported "
                    "surface as part of the bump",
                )
            elif c_exports and c_exports != manifest:
                yield (
                    version_line,
                    0,
                    f"exported surface differs from the recorded ABI "
                    f"{python_version} manifest — a C-side change "
                    "without a repro_scoref_abi_version bump; bump the "
                    "version and record the new surface",
                )


# ---------------------------------------------------------------------------
# registry hook


def flow_rules() -> List[Rule]:
    return [
        BudgetFlow(),
        RngStreamDiscipline(),
        LockDiscipline(),
        NativeAbiDrift(),
    ]


__all__ = [
    "ABI_MANIFEST",
    "AnalysisContext",
    "BudgetFlow",
    "FlowRule",
    "LockDiscipline",
    "NativeAbiDrift",
    "RngStreamDiscipline",
    "flow_rules",
    "parse_c_abi_version",
    "parse_c_exports",
    "parse_ctypes_declarations",
]
