"""Intraprocedural dataflow engine for the flow-tier rules.

Three classic building blocks, each sized for function-scale graphs:

* :func:`build_cfg` — a statement-level control-flow graph per function
  (``if``/``while``/``for``/``try``/``with``/``break``/``continue``/
  ``return``/``raise`` all modeled; every statement inside a ``try``
  body conservatively edges into each handler).  An optional
  ``branch_filter`` lets a rule prune branches it knows are infeasible
  in the scenario it checks — e.g. PRIV003 analyzes the
  ``accountant is not None`` world, so the ``is None`` arm drops out
  and a guarded ``accountant.spend`` still dominates the data access.
* :func:`dominators` — iterative dominator sets over that CFG, the
  "is every path to this access preceded by a spend?" primitive.
* :func:`reaching_definitions` — which assignment of a name reaches a
  use; DET004 uses it to tell one generator drawn in two sibling loops
  (one definition reaching both) from a re-seeded generator (two
  definitions, one per loop).

All structures are plain dicts/lists so ``--jobs`` workers can pickle
rule inputs freely.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

BranchFilter = Callable[[ast.expr], Optional[bool]]

#: Node indices of the two synthetic endpoints.
ENTRY = 0
EXIT = 1


@dataclass
class CFG:
    """Statement-level control-flow graph of one function body."""

    #: ``nodes[i]`` is the statement at node ``i`` (None for entry/exit).
    nodes: List[Optional[ast.stmt]] = field(default_factory=list)
    succ: Dict[int, Set[int]] = field(default_factory=dict)
    pred: Dict[int, Set[int]] = field(default_factory=dict)

    def node_of(self, stmt: ast.stmt) -> Optional[int]:
        for index, node in enumerate(self.nodes):
            if node is stmt:
                return index
        return None


class _Builder:
    def __init__(self, branch_filter: Optional[BranchFilter]) -> None:
        self.cfg = CFG(nodes=[None, None], succ={}, pred={})
        for index in (ENTRY, EXIT):
            self.cfg.succ[index] = set()
            self.cfg.pred[index] = set()
        self.branch_filter = branch_filter
        #: Stack of (continue-target, break-sink list) for enclosing loops.
        self._loops: List[Tuple[int, List[int]]] = []
        #: Stack of handler-entry node lists for enclosing ``try`` bodies.
        self._handlers: List[List[int]] = []

    def new_node(self, stmt: Optional[ast.stmt]) -> int:
        index = len(self.cfg.nodes)
        self.cfg.nodes.append(stmt)
        self.cfg.succ[index] = set()
        self.cfg.pred[index] = set()
        # Anything inside a try body may raise into its handlers.
        for handlers in self._handlers:
            for handler in handlers:
                self.edge(index, handler)
        return index

    def edge(self, source: int, target: int) -> None:
        self.cfg.succ[source].add(target)
        self.cfg.pred[target].add(source)

    def connect(self, frontier: Sequence[int], target: int) -> None:
        for node in frontier:
            self.edge(node, target)

    # ------------------------------------------------------------------
    def block(self, stmts: Sequence[ast.stmt], frontier: List[int]) -> List[int]:
        for stmt in stmts:
            if not frontier:
                break  # unreachable code after return/raise/break
            frontier = self.statement(stmt, frontier)
        return frontier

    def statement(self, stmt: ast.stmt, frontier: List[int]) -> List[int]:
        if isinstance(stmt, ast.If):
            return self._if(stmt, frontier)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._loop(stmt, frontier)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, frontier)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            node = self.new_node(stmt)
            self.connect(frontier, node)
            return self.block(stmt.body, [node])
        if isinstance(stmt, (ast.Return, ast.Raise)):
            node = self.new_node(stmt)
            self.connect(frontier, node)
            self.edge(node, EXIT)
            return []
        if isinstance(stmt, ast.Break):
            node = self.new_node(stmt)
            self.connect(frontier, node)
            if self._loops:
                self._loops[-1][1].append(node)
            return []
        if isinstance(stmt, ast.Continue):
            node = self.new_node(stmt)
            self.connect(frontier, node)
            if self._loops:
                self.edge(node, self._loops[-1][0])
            return []
        node = self.new_node(stmt)
        self.connect(frontier, node)
        return [node]

    def _if(self, stmt: ast.If, frontier: List[int]) -> List[int]:
        node = self.new_node(stmt)
        self.connect(frontier, node)
        taken = self.branch_filter(stmt.test) if self.branch_filter else None
        out: List[int] = []
        if taken is not False:
            out.extend(self.block(stmt.body, [node]))
        if taken is not True:
            out.extend(self.block(stmt.orelse, [node]) if stmt.orelse else [node])
        return out

    def _loop(self, stmt: ast.stmt, frontier: List[int]) -> List[int]:
        head = self.new_node(stmt)
        self.connect(frontier, head)
        breaks: List[int] = []
        self._loops.append((head, breaks))
        body_frontier = self.block(stmt.body, [head])
        self._loops.pop()
        self.connect(body_frontier, head)
        out = [head] + breaks
        if stmt.orelse:
            out = self.block(stmt.orelse, out)
        return out

    def _try(self, stmt: ast.Try, frontier: List[int]) -> List[int]:
        handler_entries = [self.new_node(handler_stub) for handler_stub in stmt.handlers]
        self._handlers.append(handler_entries)
        body_frontier = self.block(stmt.body, list(frontier))
        self._handlers.pop()
        # Exceptions may fire before the first body statement runs.
        for handler in handler_entries:
            self.connect(frontier, handler)
        out: List[int] = []
        if stmt.orelse:
            out.extend(self.block(stmt.orelse, body_frontier))
        else:
            out.extend(body_frontier)
        for entry, handler in zip(handler_entries, stmt.handlers):
            out.extend(self.block(handler.body, [entry]))
        if stmt.finalbody:
            out = self.block(stmt.finalbody, out)
        return out


def build_cfg(
    body: Sequence[ast.stmt],
    branch_filter: Optional[BranchFilter] = None,
) -> CFG:
    """CFG of a statement list (typically a ``FunctionDef.body``)."""
    builder = _Builder(branch_filter)
    frontier = builder.block(list(body), [ENTRY])
    builder.connect(frontier, EXIT)
    return builder.cfg


# ---------------------------------------------------------------------------
# dominators


def dominators(cfg: CFG) -> Dict[int, Set[int]]:
    """``dom[n]`` = nodes on *every* path from entry to ``n`` (incl. n)."""
    nodes = list(range(len(cfg.nodes)))
    full = set(nodes)
    dom: Dict[int, Set[int]] = {n: set(full) for n in nodes}
    dom[ENTRY] = {ENTRY}
    changed = True
    while changed:
        changed = False
        for node in nodes:
            if node == ENTRY:
                continue
            preds = cfg.pred[node]
            if preds:
                new = set.intersection(*(dom[p] for p in preds))
            else:
                new = set()  # unreachable: dominated by nothing real
            new.add(node)
            if new != dom[node]:
                dom[node] = new
                changed = True
    return dom


def dominates(dom: Dict[int, Set[int]], a: int, b: int) -> bool:
    return a in dom.get(b, set())


# ---------------------------------------------------------------------------
# reaching definitions


def assigned_names(stmt: ast.stmt) -> Set[str]:
    """Names (re)bound by one statement, walrus expressions included."""
    names: Set[str] = set()

    def collect_target(target: ast.AST) -> None:
        if isinstance(target, ast.Name):
            names.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                collect_target(element)
        elif isinstance(target, ast.Starred):
            collect_target(target.value)

    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            collect_target(target)
    elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
        collect_target(stmt.target)
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        collect_target(stmt.target)
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            if item.optional_vars is not None:
                collect_target(item.optional_vars)
    elif isinstance(stmt, ast.ExceptHandler) and stmt.name:
        names.add(stmt.name)
    # Walrus anywhere in the statement's expressions (loop heads, tests,
    # calls) also binds — but do not descend into nested function/class
    # bodies, whose assignments are a different scope.
    for node in ast.walk(stmt):
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ) and node is not stmt:
            continue
        if isinstance(node, ast.NamedExpr) and isinstance(
            node.target, ast.Name
        ):
            names.add(node.target.id)
    return names


def reaching_definitions(cfg: CFG) -> Dict[int, Set[Tuple[str, int]]]:
    """``in[n]`` = set of ``(name, defining node)`` pairs reaching ``n``.

    The synthetic entry node is the defining node for parameters and
    anything defined outside the analyzed body.
    """
    nodes = list(range(len(cfg.nodes)))
    gen: Dict[int, Set[Tuple[str, int]]] = {}
    kill_names: Dict[int, Set[str]] = {}
    for node in nodes:
        stmt = cfg.nodes[node]
        names = assigned_names(stmt) if stmt is not None else set()
        gen[node] = {(name, node) for name in names}
        kill_names[node] = names
    reach_in: Dict[int, Set[Tuple[str, int]]] = {n: set() for n in nodes}
    reach_out: Dict[int, Set[Tuple[str, int]]] = {n: set(gen[n]) for n in nodes}
    worklist = list(nodes)
    while worklist:
        node = worklist.pop()
        incoming: Set[Tuple[str, int]] = set()
        for pred in cfg.pred[node]:
            incoming |= reach_out[pred]
        reach_in[node] = incoming
        survived = {
            pair for pair in incoming if pair[0] not in kill_names[node]
        }
        new_out = survived | gen[node]
        if new_out != reach_out[node]:
            reach_out[node] = new_out
            worklist.extend(cfg.succ[node])
    return reach_in


# ---------------------------------------------------------------------------
# convenience: None-guard branch filter (PRIV003's pruning)


def none_guard_filter(names: Set[str]) -> BranchFilter:
    """Branch filter assuming every name in ``names`` is not None.

    ``if x is None: ...`` prunes to the else arm; ``if x is not None:``
    prunes to the body.  Anything else stays two-armed.
    """

    def decide(test: ast.expr) -> Optional[bool]:
        if (
            isinstance(test, ast.Compare)
            and len(test.ops) == 1
            and isinstance(test.left, ast.Name)
            and test.left.id in names
            and len(test.comparators) == 1
            and isinstance(test.comparators[0], ast.Constant)
            and test.comparators[0].value is None
        ):
            if isinstance(test.ops[0], ast.Is):
                return False  # "x is None" is false in the not-None world
            if isinstance(test.ops[0], ast.IsNot):
                return True
        return None

    return decide


__all__ = [
    "CFG",
    "ENTRY",
    "EXIT",
    "assigned_names",
    "build_cfg",
    "dominates",
    "dominators",
    "none_guard_filter",
    "reaching_definitions",
]
