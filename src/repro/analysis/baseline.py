"""Checked-in baseline of grandfathered findings.

A baseline lets the analyzer land with a non-empty repo without a flag-day
cleanup: findings matching a baseline entry are reported as ``baselined``
and do not fail the run.  Entries key on
``path::rule::crc32(stripped line text)`` so they survive pure line-number
drift (code moving up/down) but expire the moment the flagged line itself
changes — grandfathering never outlives an edit to the offending code.

The repo's checked-in ``analysis_baseline.json`` is intentionally empty:
the self-hosting refactor cleared every finding.  The mechanism stays for
future rules that land faster than their cleanup.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import replace
from pathlib import Path
from typing import Dict, Iterable, List

from repro.analysis.rules import Finding
from repro.core.serialize import atomic_write_text

BASELINE_SCHEMA_VERSION = 1


def finding_fingerprint(path: str, rule: str, line_text: str) -> str:
    """Stable content key: survives reordering, expires on edits."""
    digest = zlib.crc32(line_text.strip().encode("utf-8"))
    return f"{path.replace(chr(92), '/')}::{rule}::{digest:08x}"


def load_baseline(path: Path) -> Dict[str, int]:
    """Entry-count map from a baseline file; empty when absent."""
    if not path.is_file():
        return {}
    data = json.loads(path.read_text())
    if data.get("schema_version") != BASELINE_SCHEMA_VERSION:
        raise ValueError(
            f"baseline {path} has schema_version "
            f"{data.get('schema_version')!r}; expected "
            f"{BASELINE_SCHEMA_VERSION} — regenerate with --write-baseline"
        )
    entries = data.get("entries", {})
    return {str(key): int(count) for key, count in entries.items()}


def write_baseline(path: Path, findings: Iterable[Finding]) -> Dict[str, int]:
    """Persist the open findings as the new baseline; returns the entries."""
    entries: Dict[str, int] = {}
    for finding in findings:
        if finding.status == "open":
            entries[finding.fingerprint] = entries.get(finding.fingerprint, 0) + 1
    payload = {
        "schema_version": BASELINE_SCHEMA_VERSION,
        "comment": (
            "Grandfathered repro.analysis findings; keys are "
            "path::rule::crc32(line). Regenerate with "
            "`python -m repro.analysis ... --write-baseline`."
        ),
        "entries": dict(sorted(entries.items())),
    }
    # Atomic like every other persisted artifact: a crash mid-write must
    # not leave a torn baseline that silently un-grandfathers the tree.
    atomic_write_text(path, json.dumps(payload, indent=2) + "\n")
    return entries


def apply_baseline(
    findings: List[Finding], baseline: Dict[str, int]
) -> List[Finding]:
    """Mark findings covered by the baseline (consuming entry counts)."""
    remaining = dict(baseline)
    out: List[Finding] = []
    for finding in findings:
        if finding.status == "open" and remaining.get(finding.fingerprint, 0) > 0:
            remaining[finding.fingerprint] -= 1
            finding = replace(finding, status="baselined")
        out.append(finding)
    return out
