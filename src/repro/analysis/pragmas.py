"""Inline suppression pragmas.

Syntax (one comment, same line as the finding or a comment-only line
immediately above it)::

    risky_call()  # repro: allow[DET001] -- justification for the exception
    # repro: allow[PRIV001, PRIV002] -- one justification covering both

Every pragma must carry at least one known rule id *and* a non-empty
justification after ``--``; malformed pragmas are themselves reported as
``ANA001`` findings, so a suppression can never silently rot.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.analysis.rules import KNOWN_RULE_IDS

#: A comment that is trying to be a pragma (used to catch malformed ones).
_PRAGMA_HINT = re.compile(r"#\s*repro\s*:")

_PRAGMA = re.compile(
    r"#\s*repro:\s*allow\[(?P<rules>[^\]]*)\]\s*(?:--\s*(?P<why>.*\S))?\s*$"
)


@dataclass(frozen=True)
class Pragma:
    line: int
    rules: Tuple[str, ...]
    justification: str
    #: True when the pragma's line holds nothing but the comment, in which
    #: case it applies to the *next* line.
    comment_only: bool


def scan_pragmas(
    source: str,
) -> Tuple[Dict[int, Pragma], List[Tuple[int, int, str]]]:
    """Extract pragmas from comments; also return malformed-pragma errors.

    Returns ``(pragmas_by_line, errors)`` where each error is a
    ``(line, col, message)`` triple destined for an ``ANA001`` finding.
    """
    pragmas: Dict[int, Pragma] = {}
    errors: List[Tuple[int, int, str]] = []
    lines = source.splitlines()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return pragmas, errors  # the parse-error finding covers this file
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        comment = token.string
        if not _PRAGMA_HINT.search(comment):
            continue
        line, col = token.start
        match = _PRAGMA.search(comment)
        if match is None:
            errors.append(
                (
                    line,
                    col,
                    "malformed pragma: expected "
                    "'# repro: allow[RULE] -- justification'",
                )
            )
            continue
        rule_ids = tuple(
            part.strip() for part in match.group("rules").split(",") if part.strip()
        )
        justification = (match.group("why") or "").strip()
        if not rule_ids:
            errors.append((line, col, "pragma lists no rule ids"))
            continue
        unknown = [r for r in rule_ids if r not in KNOWN_RULE_IDS]
        if unknown:
            errors.append(
                (line, col, f"pragma references unknown rule id(s) {unknown}")
            )
            continue
        if not justification:
            errors.append(
                (
                    line,
                    col,
                    f"pragma for {list(rule_ids)} carries no justification; "
                    "append '-- why this exception is sound'",
                )
            )
            continue
        prefix = lines[line - 1][:col] if line - 1 < len(lines) else ""
        pragmas[line] = Pragma(
            line=line,
            rules=rule_ids,
            justification=justification,
            comment_only=not prefix.strip(),
        )
    return pragmas, errors


def pragma_for(
    pragmas: Dict[int, Pragma], rule_id: str, line: int
) -> Pragma | None:
    """The pragma suppressing ``rule_id`` at ``line``, if any."""
    inline = pragmas.get(line)
    if inline is not None and rule_id in inline.rules:
        return inline
    above = pragmas.get(line - 1)
    if above is not None and above.comment_only and rule_id in above.rules:
        return above
    return None
