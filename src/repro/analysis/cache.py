"""Per-file result caching.

Findings are a pure function of (file bytes, rule set), so repeated runs —
the common local loop of fix / re-run — only re-analyze files whose content
hash changed.  The cache stores findings *after* pragma resolution (pragmas
live in the file content, hence in the hash) but *before* baseline
matching, which depends on an external file and is re-applied every run.

The cache file is local state (gitignored), versioned by
``ANALYZER_VERSION`` plus the active rule ids so rule changes invalidate it
wholesale.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.analysis.rules import ANALYZER_VERSION, Finding, Rule

DEFAULT_CACHE_NAME = ".repro_analysis_cache.json"


def content_digest(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def rules_signature(rules: Sequence[Rule], context_fingerprint: str = "") -> str:
    """Cache signature: analyzer version + active rules + pass-1 context.

    The context fingerprint covers the project symbol graph and the
    native C sources, so cross-file changes invalidate cached flow-tier
    findings even when the cached file itself is byte-identical.
    """
    base = ANALYZER_VERSION + ":" + ",".join(sorted(rule.id for rule in rules))
    if context_fingerprint:
        base += "+ctx:" + context_fingerprint
    return base


class ResultCache:
    """A JSON-file cache of per-file findings."""

    def __init__(self, path: Optional[Path]):
        self.path = path
        self._entries: Dict[str, Dict] = {}
        self.hits = 0
        self.misses = 0
        if path is not None and path.is_file():
            try:
                data = json.loads(path.read_text())
                if isinstance(data, dict):
                    self._entries = data.get("files", {})
            except (json.JSONDecodeError, OSError):
                self._entries = {}

    def get(
        self, file_path: str, digest: str, signature: str
    ) -> Optional[List[Finding]]:
        entry = self._entries.get(file_path)
        if (
            entry is None
            or entry.get("digest") != digest
            or entry.get("signature") != signature
        ):
            self.misses += 1
            return None
        self.hits += 1
        return [Finding.from_dict(d) for d in entry["findings"]]

    def put(
        self,
        file_path: str,
        digest: str,
        signature: str,
        findings: List[Finding],
    ) -> None:
        self._entries[file_path] = {
            "digest": digest,
            "signature": signature,
            "findings": [f.to_dict() for f in findings],
        }

    def save(self) -> None:
        if self.path is None:
            return
        payload = {"cache_version": 1, "files": self._entries}
        self.path.write_text(json.dumps(payload) + "\n")
