"""Per-dataset privacy-budget ledger for the serving layer.

One real table, many fits: sequential composition (Section 3) says their
ε charges *add*, so a serving system needs one durable accountant per
dataset that every fit charges into — not the fresh per-fit accountant
the batch pipeline historically constructed.  :class:`DatasetLedger`
holds exactly that: a thread-safe
:class:`~repro.dp.accountant.PrivacyAccountant` per dataset whose grants
are persisted (atomically, via
:func:`~repro.core.serialize.atomic_write_text`) before the spender
proceeds, so a restart can never forget ε that was already spent.

Durability ordering: a charge is (1) validated and recorded in memory
under the accountant's lock, (2) written to disk, and only then (3)
returned to the caller — the caller touches data strictly after the
grant is durable.  If the write fails, the in-memory charge is unwound
(no data was accessed under it) and the error propagates.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.serialize import atomic_write_text
from repro.dp.accountant import PrivacyAccountant

PathLike = Union[str, Path]

LEDGER_FORMAT_VERSION = 1

#: Replay tolerance: a persisted ledger whose charges exceed its own
#: total by more than this was not written by the accountant (corrupt or
#: hand-edited) and is refused at load.
_REPLAY_TOLERANCE = 1e-9


class _PersistentAccountant(PrivacyAccountant):
    """An accountant whose grants are durable before they are usable.

    ``spend`` runs the whole charge-then-persist transaction under the
    owning ledger's transaction lock, so concurrent spenders (and the
    rollback of a failed persist) can never interleave: the entry
    unwound on failure is always the one this call appended.
    """

    def __init__(
        self,
        total_epsilon: float,
        entries: Sequence[Tuple[str, float]],
        transaction_lock: threading.Lock,
        persist_locked: Callable[[], None],
    ) -> None:
        super().__init__(
            float(total_epsilon),
            [(str(label), float(amount)) for label, amount in entries],
        )
        self._transaction_lock = transaction_lock
        self._persist_locked = persist_locked

    def spend(self, label: str, epsilon: float) -> float:
        with self._transaction_lock:
            granted = PrivacyAccountant.spend(self, label, epsilon)
            try:
                self._persist_locked()
            except BaseException:
                # The grant never became durable and no data was touched
                # under it (the caller has not seen it yet): unwind.
                self.unwind()
                raise
        return granted

    #: Keep the historical alias pointing at the persistent override.
    charge = spend


class DatasetLedger:
    """Thread-safe, persistent per-dataset privacy accountants.

    Parameters
    ----------
    path:
        JSON file backing the ledger.  ``None`` keeps the ledger
        in-memory (tests, demos); otherwise the file is loaded if present
        and every grant is atomically rewritten through a temp file +
        ``os.replace``, so readers and restarts see either the previous
        complete document or the new one.

    Usage::

        ledger = DatasetLedger(root / "ledger.json")
        acc = ledger.accountant("adult", total_epsilon=2.0)
        PrivBayes(epsilon=1.0).fit(table, rng, accountant=acc)  # ok
        PrivBayes(epsilon=1.0).fit(table, rng, accountant=acc)  # ok — exhausts
        PrivBayes(epsilon=1.0).fit(table, rng, accountant=acc)  # PrivacyBudgetError
    """

    def __init__(self, path: Optional[PathLike] = None) -> None:
        self._path = Path(path) if path is not None else None
        # Transaction lock: serializes every (charge, persist) pair and
        # dataset registration across all of this ledger's accountants.
        self._lock = threading.Lock()
        self._accountants: Dict[str, _PersistentAccountant] = {}
        if self._path is not None and self._path.exists():
            self._load()

    # ------------------------------------------------------------------
    # Accountant access
    # ------------------------------------------------------------------
    def accountant(
        self, dataset: str, total_epsilon: Optional[float] = None
    ) -> PrivacyAccountant:
        """The dataset's accountant, creating it on first use.

        ``total_epsilon`` sets the dataset's end-to-end budget when the
        dataset is new; for a known dataset it is optional but, when
        given, must match the recorded budget (a silently re-opened
        budget would be a composition bug, so a mismatch raises).
        """
        with self._lock:
            existing = self._accountants.get(dataset)
            if existing is not None:
                if (
                    total_epsilon is not None
                    and float(total_epsilon) != existing.total_epsilon
                ):
                    raise ValueError(
                        f"dataset {dataset!r} already has budget "
                        f"ε={existing.total_epsilon:g}; cannot reopen with "
                        f"ε={float(total_epsilon):g}"
                    )
                return existing
            if total_epsilon is None:
                raise KeyError(
                    f"dataset {dataset!r} is not in the ledger; pass "
                    "total_epsilon to register it"
                )
            account = _PersistentAccountant(
                float(total_epsilon), [], self._lock, self._persist_locked
            )
            self._accountants[dataset] = account
            try:
                self._persist_locked()
            except BaseException:
                del self._accountants[dataset]
                raise
            return account

    def datasets(self) -> List[str]:
        """Registered dataset names, sorted."""
        with self._lock:
            return sorted(self._accountants)

    def report(self) -> Dict[str, Dict]:
        """Budget summary per dataset (for the CLI / monitoring)."""
        with self._lock:
            accounts = dict(self._accountants)
        return {
            name: {
                "total_epsilon": account.total_epsilon,
                "spent": account.spent,
                "remaining": account.remaining,
                "charges": account.ledger,
            }
            for name, account in sorted(accounts.items())
        }

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def _load(self) -> None:
        try:
            doc = json.loads(self._path.read_text())
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"ledger file {self._path} is not valid JSON (truncated "
                f"or corrupt write?): {exc}"
            ) from exc
        version = doc.get("format_version")
        if version != LEDGER_FORMAT_VERSION:
            raise ValueError(
                f"ledger file {self._path}: unsupported format version "
                f"{version!r}"
            )
        datasets = doc.get("datasets")
        if not isinstance(datasets, dict):
            raise ValueError(
                f"ledger file {self._path}: missing 'datasets' mapping"
            )
        for name in sorted(datasets):
            entry = datasets[name]
            try:
                account = _PersistentAccountant(
                    float(entry["total_epsilon"]),
                    [
                        (str(label), float(amount))
                        for label, amount in entry["ledger"]
                    ],
                    self._lock,
                    self._persist_locked,
                )
            except (KeyError, TypeError, ValueError) as exc:
                raise ValueError(
                    f"ledger file {self._path}: dataset {name!r} entry is "
                    f"malformed ({exc})"
                ) from exc
            if account.remaining < -_REPLAY_TOLERANCE:
                raise ValueError(
                    f"ledger file {self._path}: dataset {name!r} records "
                    f"ε spend {account.spent:g} exceeding its total "
                    f"budget {account.total_epsilon:g} — refusing a "
                    "ledger the accountant could not have written"
                )
            self._accountants[name] = account

    def _persist_locked(self) -> None:
        """Write the full ledger state; caller holds ``self._lock``."""
        if self._path is None:
            return
        doc = {
            "format_version": LEDGER_FORMAT_VERSION,
            "datasets": {
                name: {
                    "total_epsilon": account.total_epsilon,
                    # The accountant's own lock is never held here (the
                    # transaction lock serializes spends), so reading the
                    # private list directly is race-free; the public
                    # .ledger property would re-take that free lock.
                    "ledger": [
                        [label, amount] for label, amount in account._ledger
                    ],
                }
                for name, account in sorted(self._accountants.items())
            },
        }
        atomic_write_text(self._path, json.dumps(doc, indent=2) + "\n")
