"""CLI for the online synthesis service: ``python -m repro.serve ...``.

Examples::

    # Fit a model into a service root, registering the dataset's total
    # budget on first contact (repeated fits compose cumulative ε):
    python -m repro.serve fit --root state --dataset adult \\
        --csv adult.csv --epsilon 1.0 --dataset-budget 3.0 --seed 0

    # Serve 10k synthetic rows from the resident model, issued as 8
    # concurrent requests coalesced into one vectorized draw:
    python -m repro.serve sample --root state --dataset adult \\
        --epsilon 1.0 --rows 10000 --requests 8 --seed 1 --out synth.csv

    # Model-based marginal answers (free post-processing):
    python -m repro.serve marginals --root state --dataset adult \\
        --epsilon 1.0 --query age,income --query sex

    # Inspect budgets / registered models:
    python -m repro.serve budget --root state
    python -m repro.serve models --root state

    # Self-contained in-memory demo (no files, deterministic):
    python -m repro.serve demo --seed 0

The ``--epsilon``/``--beta``/... flags on ``sample``/``marginals`` must
match the fit they target: models are keyed on ``(dataset, config)``.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys

import numpy as np

from repro.core.privbayes import PrivBayesConfig
from repro.data.io import read_csv, write_csv
from repro.datasets.synthetic import random_binary_table
from repro.dp.accountant import PrivacyBudgetError
from repro.serve.service import SynthesisService


def _add_config_arguments(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("model config (registry key)")
    group.add_argument("--epsilon", type=float, required=True)
    group.add_argument("--beta", type=float, default=None)
    group.add_argument("--theta", type=float, default=None)
    group.add_argument("--score", default=None, choices=["auto", "I", "F", "R"])
    group.add_argument(
        "--mode", default=None, choices=["auto", "binary", "general"]
    )
    group.add_argument("--k", type=int, default=None)
    group.add_argument("--generalize", action="store_true")
    group.add_argument("--first-attribute", default=None)


def _config_from_args(args: argparse.Namespace) -> PrivBayesConfig:
    overrides = {
        "beta": args.beta,
        "theta": args.theta,
        "score": args.score,
        "mode": args.mode,
        "k": args.k,
        "first_attribute": args.first_attribute,
    }
    kwargs = {key: value for key, value in overrides.items() if value is not None}
    if args.generalize:
        kwargs["generalize"] = True
    return PrivBayesConfig(epsilon=args.epsilon, **kwargs)


def _cmd_fit(args: argparse.Namespace) -> int:
    service = SynthesisService(args.root)
    table = read_csv(args.csv)
    config = _config_from_args(args)
    rng = np.random.default_rng(args.seed)
    try:
        model = service.fit(
            args.dataset,
            table,
            config,
            rng=rng,
            dataset_budget=args.dataset_budget,
        )
    except PrivacyBudgetError as error:
        print(f"refused: {error}", file=sys.stderr)
        return 3
    account = service.ledger.accountant(args.dataset)
    print(
        f"fitted {args.dataset!r} (n={model.source_n}, "
        f"d={len(model.table_attributes)}, mode k={model.k}); dataset "
        f"budget: spent {account.spent:g} of {account.total_epsilon:g}"
    )
    return 0


async def _coalesced_request_tables(sampler, counts):
    return await asyncio.gather(
        *(sampler.sample(count) for count in counts)
    )


def _cmd_sample(args: argparse.Namespace) -> int:
    service = SynthesisService(args.root)
    config = _config_from_args(args)
    try:
        sampler = service.sampler(
            args.dataset, config, np.random.default_rng(args.seed)
        )
    except KeyError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    requests = max(1, args.requests)
    base, extra = divmod(args.rows, requests)
    counts = [base + (1 if index < extra else 0) for index in range(requests)]
    with sampler:
        tables = asyncio.run(_coalesced_request_tables(sampler, counts))
    if args.out is not None:
        write_csv(iter(tables), args.out)
        destination = args.out
    else:
        destination = "(discarded; pass --out)"
    print(
        f"served {args.rows} rows as {requests} request(s) in "
        f"{len(sampler.batch_request_counts)} coalesced draw(s) -> "
        f"{destination}"
    )
    return 0


def _cmd_marginals(args: argparse.Namespace) -> int:
    service = SynthesisService(args.root)
    config = _config_from_args(args)
    workload = [query.split(",") for query in args.query]
    try:
        answers = service.marginals(args.dataset, config, workload)
    except KeyError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    printable = {
        "|".join(names): np.asarray(values).tolist()
        for names, values in answers.items()
    }
    print(json.dumps(printable, indent=2))
    return 0


def _cmd_budget(args: argparse.Namespace) -> int:
    service = SynthesisService(args.root)
    report = service.ledger.report()
    if args.dataset is not None:
        report = {
            name: entry
            for name, entry in report.items()
            if name == args.dataset
        }
    print(json.dumps(report, indent=2))
    return 0


def _cmd_models(args: argparse.Namespace) -> int:
    service = SynthesisService(args.root)
    for dataset, config in service.registry.entries():
        model = service.registry.get(dataset, config)
        print(
            f"{dataset}: epsilon={config.epsilon:g} mode={config.mode} "
            f"score={config.score} n={model.source_n} "
            f"d={len(model.table_attributes)}"
        )
    if len(service.registry) == 0:
        print("(registry is empty)")
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    """In-memory end-to-end tour: fit, coalesce, compose, refuse."""
    table = random_binary_table(n=4000, d=8, seed=args.seed)
    service = SynthesisService(None)
    rng = np.random.default_rng(args.seed)
    config = PrivBayesConfig(epsilon=1.0)
    service.fit("demo", table, config, rng=rng, dataset_budget=2.0)
    print("fit 1: ok (spent 1 of 2)")
    sampler = service.sampler("demo", config, np.random.default_rng(args.seed))
    with sampler:
        tables = asyncio.run(
            _coalesced_request_tables(sampler, [500, 250, 125, 125])
        )
    print(
        f"served {sum(t.n for t in tables)} rows across {len(tables)} "
        f"concurrent requests in {len(sampler.batch_request_counts)} "
        "coalesced draw(s)"
    )
    second = PrivBayesConfig(epsilon=1.0, beta=0.4)
    service.fit("demo", table, second, rng=rng)
    print("fit 2: ok (spent 2 of 2 — budget exhausted)")
    try:
        service.fit("demo", table, PrivBayesConfig(epsilon=0.5), rng=rng)
    except PrivacyBudgetError as error:
        print(f"fit 3: refused before touching data — {error}")
        return 0
    print("fit 3: unexpectedly granted", file=sys.stderr)
    return 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Online synthesis service over fitted PrivBayes models.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    fit = commands.add_parser("fit", help="fit a model into the registry")
    fit.add_argument("--root", required=True)
    fit.add_argument("--dataset", required=True)
    fit.add_argument("--csv", required=True)
    fit.add_argument("--dataset-budget", type=float, default=None)
    fit.add_argument("--seed", type=int, default=0)
    _add_config_arguments(fit)
    fit.set_defaults(func=_cmd_fit)

    sample = commands.add_parser(
        "sample", help="serve synthetic rows from a resident model"
    )
    sample.add_argument("--root", required=True)
    sample.add_argument("--dataset", required=True)
    sample.add_argument("--rows", "-n", type=int, required=True)
    sample.add_argument("--requests", type=int, default=1)
    sample.add_argument("--seed", type=int, default=0)
    sample.add_argument("--out", default=None)
    _add_config_arguments(sample)
    sample.set_defaults(func=_cmd_sample)

    marginals = commands.add_parser(
        "marginals", help="model-based marginal answers"
    )
    marginals.add_argument("--root", required=True)
    marginals.add_argument("--dataset", required=True)
    marginals.add_argument(
        "--query",
        action="append",
        required=True,
        help="comma-separated attribute list; repeatable",
    )
    _add_config_arguments(marginals)
    marginals.set_defaults(func=_cmd_marginals)

    budget = commands.add_parser("budget", help="print the dataset ledgers")
    budget.add_argument("--root", required=True)
    budget.add_argument("--dataset", default=None)
    budget.set_defaults(func=_cmd_budget)

    models = commands.add_parser("models", help="list registered models")
    models.add_argument("--root", required=True)
    models.set_defaults(func=_cmd_models)

    demo = commands.add_parser("demo", help="in-memory end-to-end demo")
    demo.add_argument("--seed", type=int, default=0)
    demo.set_defaults(func=_cmd_demo)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
