"""Request-coalescing sampling front end (asyncio, stdlib only).

Serving many small ``sample(n_i)`` requests one by one repeats the whole
ancestral pass — one uniform block, one CDF inversion and one table
construction per attribute *per request*.  The coalescer batches instead:
requests arriving while the event loop drains land in one pending list,
and a single vectorized draw of ``sum(n_i)`` tuples
(:func:`~repro.core.sampler.sample_synthetic_split`) is sliced back per
request.  Slicing is pure post-processing of the one draw, so the
concatenated responses are **bit-identical** to the equivalent single
``sample(sum(n_i))`` — coalescing changes throughput, never output.

Determinism contract: the sampler owns one seeded stream; batch ``b``
draws exactly the uniforms that the concatenation of its requests (in
arrival order) would have drawn as one call.  Outputs therefore depend on
request arrival order and batch boundaries — inherent to any shared-
stream server — but never on thread scheduling *within* a batch, and a
replay that issues the same requests in the same order with the same
seed reproduces every response exactly.

The draw itself runs on a single-worker :class:`ThreadPoolExecutor`
(numpy releases the GIL in the hot loops), keeping the event loop free
to accumulate the next batch while the current one is being drawn.
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.bn.inference import model_marginals
from repro.core.privbayes import PrivBayesModel
from repro.core.rng import fallback_rng
from repro.core.sampler import sample_synthetic_split
from repro.data.table import Table


class CoalescingSampler:
    """Batches concurrent ``sample`` calls on one resident model.

    Parameters
    ----------
    model:
        A fitted :class:`~repro.core.privbayes.PrivBayesModel` (typically
        out of the :class:`~repro.serve.registry.ModelRegistry`, caches
        warm).
    rng:
        The sampler's single seeded stream.  Pass one for reproducible
        serving; the default falls back to OS entropy via the sanctioned
        :func:`~repro.core.rng.fallback_rng`.
    executor:
        Optional executor for the draws.  The default is a private
        single-worker pool, which also guarantees batches draw from the
        stream in submission order; a wider custom executor keeps
        correctness (a lock serializes draws) but may reorder batches.
    """

    def __init__(
        self,
        model: PrivBayesModel,
        rng: Optional[np.random.Generator] = None,
        executor: Optional[ThreadPoolExecutor] = None,
    ) -> None:
        self._model = model
        self._rng = fallback_rng(rng)
        self._own_executor = executor is None
        self._executor = executor or ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-draw"
        )
        self._pending: List[Tuple[int, asyncio.Future]] = []
        self._drain_scheduled = False
        self._draw_lock = threading.Lock()
        self._marginal_cache: Dict[Tuple[Tuple[str, ...], ...], Dict] = {}
        #: Number of requests served by each coalesced draw, in draw
        #: order — ``[3, 1]`` means one batch of three then a singleton.
        self.batch_request_counts: List[int] = []
        #: Rows drawn per batch (parallel to ``batch_request_counts``).
        self.batch_row_counts: List[int] = []

    @property
    def model(self) -> PrivBayesModel:
        return self._model

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    async def sample(self, n: int) -> Table:
        """One request for ``n`` synthetic rows; coalesced transparently.

        All requests submitted before the loop reaches the drain callback
        (e.g. everything scheduled by one ``asyncio.gather``) share a
        single vectorized draw.
        """
        n = int(n)
        if n < 0:
            raise ValueError("n must be non-negative")
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._pending.append((n, future))
        if not self._drain_scheduled:
            self._drain_scheduled = True
            loop.call_soon(self._drain, loop)
        return await future

    def _drain(self, loop: asyncio.AbstractEventLoop) -> None:
        batch = self._pending
        self._pending = []
        self._drain_scheduled = False
        if not batch:
            return
        counts = [count for count, _ in batch]
        self.batch_request_counts.append(len(batch))
        self.batch_row_counts.append(sum(counts))
        task = loop.run_in_executor(self._executor, self._draw, counts)

        def _resolve(done) -> None:
            error = done.exception()
            if error is not None:
                for _, future in batch:
                    if not future.done():
                        future.set_exception(error)
                return
            for table, (_, future) in zip(done.result(), batch):
                if not future.done():
                    future.set_result(table)

        task.add_done_callback(_resolve)

    def _draw(self, counts: Sequence[int]) -> List[Table]:
        # Serialize stream access: with a multi-worker custom executor two
        # batches could otherwise interleave their uniform draws.
        with self._draw_lock:
            return sample_synthetic_split(
                self._model.noisy,
                self._model.table_attributes,
                counts,
                self._rng,
            )

    # ------------------------------------------------------------------
    # Model-based marginal answers
    # ------------------------------------------------------------------
    async def marginals(self, workload: Sequence[Sequence[str]]) -> Dict:
        """Answer a marginal workload directly from the model.

        Variable elimination on the fitted network
        (:func:`~repro.bn.inference.model_marginals`) — deterministic,
        free of sampling noise, and free of ε (post-processing), so
        responses are cached per workload for the life of the sampler.
        """
        key = tuple(tuple(str(name) for name in names) for names in workload)
        cached = self._marginal_cache.get(key)
        if cached is not None:
            return cached
        loop = asyncio.get_running_loop()
        answers = await loop.run_in_executor(
            self._executor, self._compute_marginals, key
        )
        self._marginal_cache[key] = answers
        return answers

    def _compute_marginals(
        self, key: Tuple[Tuple[str, ...], ...]
    ) -> Dict:
        return model_marginals(
            self._model.noisy,
            self._model.table_attributes,
            [list(names) for names in key],
        )

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut down the private executor (no-op for a shared one)."""
        if self._own_executor:
            self._executor.shutdown(wait=True)

    def __enter__(self) -> "CoalescingSampler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
