"""Online synthesis service (ROADMAP item 1).

The paper's concluding remarks observe that sampling and inference from
the fitted network are free post-processing; this package turns that into
a serving layer: fit once, keep the model (with its cached row CDFs)
resident, and answer synthetic-row and marginal requests at memory speed
while a per-dataset ledger enforces cumulative ε across repeated fits.

Three components, each usable on its own:

* :class:`~repro.serve.ledger.DatasetLedger` — thread-safe, persistent
  per-dataset :class:`~repro.dp.accountant.PrivacyAccountant`; every
  ``PrivBayes.fit(..., accountant=...)`` reserves its whole ε before
  touching the data, and grants survive process restarts.
* :class:`~repro.serve.registry.ModelRegistry` — fitted
  :class:`~repro.core.privbayes.PrivBayesModel`\\ s resident in memory,
  keyed on ``(dataset, config)``, persisted via the atomic
  :func:`~repro.core.serialize.save_model` path for warm restarts.
* :class:`~repro.serve.coalescer.CoalescingSampler` — an asyncio front
  end that batches concurrent ``sample(n_i)`` requests into one
  vectorized draw (bit-identical to the equivalent single draw, sliced)
  and answers marginal workloads directly from the model.

:class:`~repro.serve.service.SynthesisService` wires the three together
under one root directory; ``python -m repro.serve`` is the CLI.
"""

from repro.serve.coalescer import CoalescingSampler
from repro.serve.ledger import DatasetLedger
from repro.serve.registry import ModelRegistry, registry_key
from repro.serve.service import SynthesisService

__all__ = [
    "CoalescingSampler",
    "DatasetLedger",
    "ModelRegistry",
    "SynthesisService",
    "registry_key",
]
