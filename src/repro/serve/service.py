"""The synthesis service: registry + ledger + coalescers under one root.

``SynthesisService`` is the piece a server process instantiates once:
it owns a :class:`~repro.serve.registry.ModelRegistry` (resident fitted
models, persisted for warm restarts), a
:class:`~repro.serve.ledger.DatasetLedger` (cumulative ε per dataset,
persisted before any grant is usable) and one
:class:`~repro.serve.coalescer.CoalescingSampler` per registered model.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Optional, Sequence, Tuple, Union

import numpy as np

from repro.bn.inference import model_marginals
from repro.core.privbayes import PrivBayes, PrivBayesConfig, PrivBayesModel
from repro.serve.coalescer import CoalescingSampler
from repro.serve.ledger import DatasetLedger
from repro.serve.registry import ModelRegistry

PathLike = Union[str, Path]

#: File layout under a service root.
MODELS_DIRNAME = "models"
LEDGER_FILENAME = "ledger.json"


class SynthesisService:
    """Fit-once, serve-forever front end over the PrivBayes pipeline.

    Parameters
    ----------
    root:
        Service state directory (``<root>/models/*.json`` registry
        entries, ``<root>/ledger.json`` budget ledger).  ``None`` runs
        fully in-memory — same semantics, no durability.
    """

    def __init__(self, root: Optional[PathLike] = None) -> None:
        if root is not None:
            root = Path(root)
            root.mkdir(parents=True, exist_ok=True)
            self.registry = ModelRegistry(root / MODELS_DIRNAME)
            self.ledger = DatasetLedger(root / LEDGER_FILENAME)
        else:
            self.registry = ModelRegistry(None)
            self.ledger = DatasetLedger(None)
        self.root = root
        self._samplers: Dict[
            Tuple[str, PrivBayesConfig], CoalescingSampler
        ] = {}

    # ------------------------------------------------------------------
    def fit(
        self,
        dataset: str,
        table,
        config: Optional[PrivBayesConfig] = None,
        rng: Optional[np.random.Generator] = None,
        dataset_budget: Optional[float] = None,
        **config_kwargs,
    ) -> PrivBayesModel:
        """Fit a model against the dataset's cumulative budget.

        ``dataset_budget`` registers the dataset's end-to-end ε on first
        fit (defaults to requiring the dataset to already be in the
        ledger).  The fit reserves its whole ``config.epsilon`` in the
        ledger *before touching data* and raises
        :class:`~repro.dp.accountant.PrivacyBudgetError` when the
        remaining dataset budget cannot cover it; on success the model
        is registered (resident + persisted) and returned.
        """
        if config is None:
            config = PrivBayesConfig(**config_kwargs)
        elif config_kwargs:
            raise ValueError("pass either config or config kwargs, not both")
        accountant = self.ledger.accountant(dataset, dataset_budget)
        model = PrivBayes(config).fit(table, rng, accountant=accountant)
        self.registry.put(dataset, model)
        return model

    def model(self, dataset: str, config: PrivBayesConfig) -> PrivBayesModel:
        """The registered model for ``(dataset, config)``; KeyError if absent."""
        model = self.registry.get(dataset, config)
        if model is None:
            raise KeyError(
                f"no model registered for dataset {dataset!r} with config "
                f"{config}"
            )
        return model

    def sampler(
        self,
        dataset: str,
        config: PrivBayesConfig,
        rng: Optional[np.random.Generator] = None,
    ) -> CoalescingSampler:
        """The (cached) coalescing sampler for a registered model.

        ``rng`` seeds the sampler's stream on first creation only; later
        calls return the existing sampler, whose stream has advanced with
        the traffic it served.
        """
        key = (dataset, config)
        sampler = self._samplers.get(key)
        if sampler is None:
            sampler = CoalescingSampler(self.model(dataset, config), rng)
            self._samplers[key] = sampler
        return sampler

    def marginals(
        self,
        dataset: str,
        config: PrivBayesConfig,
        workload: Sequence[Sequence[str]],
    ) -> Dict:
        """Synchronous model-based marginal answers (no ε, no sampling)."""
        model = self.model(dataset, config)
        return model_marginals(
            model.noisy, model.table_attributes, workload
        )

    def close(self) -> None:
        for key in sorted(self._samplers, key=str):
            self._samplers[key].close()
        self._samplers.clear()

    def __enter__(self) -> "SynthesisService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
