"""Resident model registry keyed on ``(dataset, config)``.

Fitting is the expensive, ε-charged step; sampling and inference from a
fitted model are free post-processing.  The registry therefore keeps
every fitted :class:`~repro.core.privbayes.PrivBayesModel` resident —
with its cached row CDFs warmed, so the first request pays no
``np.cumsum`` — and mirrors each model to disk through the atomic
:func:`~repro.core.serialize.save_model` document format, extended with
the fit's config, source cardinality and per-phase ε ledger.  A fresh
process pointed at the same root reloads (and re-validates) every entry:
warm restarts resume serving bit-identically.
"""

from __future__ import annotations

import json
import re
import threading
import zlib
from dataclasses import asdict
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.core.privbayes import PrivBayesConfig, PrivBayesModel
from repro.core.serialize import (
    atomic_write_text,
    model_from_dict,
    model_to_dict,
)
from repro.dp.accountant import PrivacyAccountant

PathLike = Union[str, Path]

REGISTRY_FORMAT_VERSION = 1

_SLUG = re.compile(r"[^A-Za-z0-9._-]+")


def registry_key(dataset: str, config: PrivBayesConfig) -> str:
    """Deterministic key for a ``(dataset, config)`` pair.

    CRC32 over the canonical JSON of the pair — a pure function of the
    values (PYTHONHASHSEED-proof), stable across processes, so on-disk
    entry names never drift between runs.
    """
    payload = json.dumps(
        {"dataset": dataset, "config": asdict(config)},
        sort_keys=True,
        separators=(",", ":"),
    )
    return f"{zlib.crc32(payload.encode('utf-8')) & 0xFFFFFFFF:08x}"


def _entry_filename(dataset: str, config: PrivBayesConfig) -> str:
    slug = _SLUG.sub("-", dataset).strip("-") or "dataset"
    return f"{slug}__{registry_key(dataset, config)}.json"


def _warm(model: PrivBayesModel) -> PrivBayesModel:
    """Materialize the sampling caches so first requests are memory-speed."""
    for conditional in model.noisy.conditionals:
        conditional.row_cdfs
        if conditional.child_size == 2:
            conditional.binary_thresholds
    return model


class ModelRegistry:
    """Fitted models resident in memory, persisted for warm restarts.

    Parameters
    ----------
    root:
        Directory for the persisted entries.  ``None`` keeps the registry
        purely in-memory; otherwise every ``put`` writes one atomic JSON
        document per ``(dataset, config)`` and construction reloads —
        and re-validates, via :func:`~repro.core.serialize.model_from_dict`
        — every ``*.json`` under the root.
    """

    def __init__(self, root: Optional[PathLike] = None) -> None:
        self._root = Path(root) if root is not None else None
        self._lock = threading.Lock()
        self._models: Dict[Tuple[str, PrivBayesConfig], PrivBayesModel] = {}
        if self._root is not None:
            self._root.mkdir(parents=True, exist_ok=True)
            for path in sorted(self._root.glob("*.json")):
                dataset, model = self._load_entry(path)
                self._models[(dataset, model.config)] = _warm(model)

    # ------------------------------------------------------------------
    def put(self, dataset: str, model: PrivBayesModel) -> PrivBayesModel:
        """Register a fitted model (resident + persisted); returns it."""
        _warm(model)
        with self._lock:
            self._models[(dataset, model.config)] = model
            if self._root is not None:
                path = self._root / _entry_filename(dataset, model.config)
                atomic_write_text(path, json.dumps(self._entry_doc(dataset, model)))
        return model

    def get(
        self, dataset: str, config: PrivBayesConfig
    ) -> Optional[PrivBayesModel]:
        """The resident model for ``(dataset, config)``, or ``None``."""
        with self._lock:
            return self._models.get((dataset, config))

    def entries(self) -> List[Tuple[str, PrivBayesConfig]]:
        """Registered ``(dataset, config)`` pairs, deterministically sorted."""
        with self._lock:
            keys = list(self._models)
        return sorted(keys, key=lambda item: (item[0], registry_key(*item)))

    def __len__(self) -> int:
        with self._lock:
            return len(self._models)

    # ------------------------------------------------------------------
    @staticmethod
    def _entry_doc(dataset: str, model: PrivBayesModel) -> dict:
        return {
            "registry_version": REGISTRY_FORMAT_VERSION,
            "dataset": dataset,
            "config": asdict(model.config),
            "source_n": model.source_n,
            "k": model.k,
            "ledger": [
                [label, amount] for label, amount in model.accountant.ledger
            ],
            "model": model_to_dict(model.noisy, model.table_attributes),
        }

    @staticmethod
    def _load_entry(path: Path) -> Tuple[str, PrivBayesModel]:
        try:
            doc = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"registry entry {path} is not valid JSON (truncated or "
                f"corrupt write?): {exc}"
            ) from exc
        version = doc.get("registry_version")
        if version != REGISTRY_FORMAT_VERSION:
            raise ValueError(
                f"registry entry {path}: unsupported registry version "
                f"{version!r}"
            )
        try:
            dataset = str(doc["dataset"])
            config = PrivBayesConfig(**doc["config"])
            source_n = int(doc["source_n"])
            k = doc.get("k")
            ledger_entries = [
                (str(label), float(amount)) for label, amount in doc["ledger"]
            ]
            model_doc = doc["model"]
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(
                f"registry entry {path}: malformed document ({exc})"
            ) from exc
        try:
            noisy, attributes = model_from_dict(model_doc)
        except ValueError as exc:
            raise ValueError(f"registry entry {path}: {exc}") from exc
        accountant = PrivacyAccountant(config.epsilon, ledger_entries)
        model = PrivBayesModel(
            noisy=noisy,
            table_attributes=tuple(attributes),
            source_n=source_n,
            config=config,
            accountant=accountant,
            k=None if k is None else int(k),
        )
        return dataset, model
