"""Differential-privacy substrate: mechanisms, sensitivity, budget accounting.

The two mechanisms the paper relies on (Section 2.1):

* :func:`laplace_mechanism` — adds i.i.d. ``Lap(sensitivity / epsilon)``
  noise to a numeric vector (Dwork et al.).
* :func:`exponential_mechanism` — samples a candidate with probability
  proportional to ``exp(score / (2 * sensitivity / epsilon))``
  (McSherry and Talwar).

A :class:`PrivacyAccountant` enforces sequential composition: every data
access charges its ε and over-spending raises :class:`PrivacyBudgetError`.
"""

from repro.dp.mechanisms import (
    exponential_mechanism,
    laplace_mechanism,
    laplace_noise,
    laplace_scale,
)
from repro.dp.accountant import (
    PrivacyAccountant,
    PrivacyBudgetError,
    scale_for_group_privacy,
    split_epsilon,
    split_epsilon_even,
)

__all__ = [
    "laplace_noise",
    "laplace_mechanism",
    "laplace_scale",
    "exponential_mechanism",
    "PrivacyAccountant",
    "PrivacyBudgetError",
    "scale_for_group_privacy",
    "split_epsilon",
    "split_epsilon_even",
]
