"""Sequential-composition privacy budget accounting.

Differential privacy composes additively across sequential data accesses
(Section 3, "composability").  The accountant is a small ledger: algorithms
charge each access before touching the data, and the ledger refuses charges
that would exceed the total budget.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

_TOLERANCE = 1e-9


class PrivacyBudgetError(ValueError, RuntimeError):
    """Raised when a charge would exceed the remaining privacy budget.

    Subclasses both :class:`ValueError` (over-spends are invalid values —
    the contract of :meth:`PrivacyAccountant.spend`) and
    :class:`RuntimeError` (the historical base, kept so existing
    ``except RuntimeError`` handlers continue to work).
    """


def split_epsilon(
    total: float, fractions: Sequence[float], remainder: bool = False
) -> Tuple[float, ...]:
    """Split a budget into shares ``total * f`` for each fraction.

    This is the single sanctioned way to divide ε outside the accountant
    (static-analysis rule PRIV001 flags raw ε arithmetic elsewhere), so the
    future serving ledger has one choke point for every split.

    Parameters
    ----------
    total:
        The budget being split; must be positive.
    fractions:
        Positive fractions; their sum may not exceed 1 (beyond float
        tolerance).
    remainder:
        When true, append ``total - sum(shares)`` as one extra final share —
        e.g. ``split_epsilon(eps, (beta,), remainder=True)`` yields exactly
        ``(beta * eps, eps - beta * eps)``, bit-identical to the historical
        two-line split of :class:`~repro.core.privbayes.PrivBayes`.
    """
    if total <= 0:
        raise ValueError("total epsilon must be positive")
    fractions = tuple(float(f) for f in fractions)
    if not fractions:
        raise ValueError("need at least one fraction")
    if any(f <= 0 for f in fractions):
        raise ValueError(f"fractions must be positive; got {fractions}")
    if sum(fractions) > 1.0 + _TOLERANCE:
        raise ValueError(
            f"fractions sum to {sum(fractions):g} > 1; shares would exceed "
            "the total budget"
        )
    shares = tuple(total * f for f in fractions)
    if remainder:
        last = total - sum(shares)
        if last <= 0:
            raise ValueError(
                "fractions leave no remainder share; drop remainder=True"
            )
        shares = shares + (last,)
    return shares


def split_epsilon_even(total: float, parts: int) -> float:
    """Per-part share of an even ``total / parts`` budget split.

    The composition argument: ``parts`` sequential releases at
    ``total / parts`` each compose to ``total``-DP.  Returns the per-part
    share (exactly ``total / parts``, so routing existing division sites
    through this helper is bit-identical).
    """
    if total <= 0:
        raise ValueError("total epsilon must be positive")
    if parts < 1:
        raise ValueError(f"parts must be at least 1; got {parts}")
    return total / parts


def scale_for_group_privacy(epsilon: float, group_size: int) -> float:
    """Budget for a mechanism that must be ε-DP at group size ``k``.

    Running an ``ε/k``-DP mechanism on data where one individual
    contributes up to ``k`` rows yields ε-DP for the individual (group
    privacy under sequential composition); used by the two-table release
    where the child-table fanout is bounded by ``max_fanout``.
    """
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    if group_size < 1:
        raise ValueError(f"group_size must be at least 1; got {group_size}")
    return epsilon / group_size


@dataclass
class PrivacyAccountant:
    """Ledger of ε spend under sequential composition.

    Thread-safe: :meth:`spend` holds an internal lock around its
    check-then-append, so concurrent charges (the serving ledger's case —
    many fits racing against one dataset budget) can never jointly
    overdraw the total.  A running ``_spent`` total makes each charge and
    each :attr:`spent` read O(1) instead of an O(ledger) re-sum; the
    incremental ``+=`` accumulates in exactly the append order ``sum()``
    over the ledger would use, so the two always agree bitwise.

    The lock is process-local state: pickling (fork-pool results,
    registry snapshots) drops it and a fresh lock is created on
    unpickling.

    Parameters
    ----------
    total_epsilon:
        The end-to-end budget.  Charges accumulate; exceeding the total
        (beyond a tiny float tolerance) raises :class:`PrivacyBudgetError`.
    """

    total_epsilon: float
    _ledger: List[Tuple[str, float]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.total_epsilon <= 0:
            raise ValueError("total_epsilon must be positive")
        # Seed the running total from any pre-supplied ledger (replay of a
        # persisted ledger) in list order — bit-identical to sum().
        spent = 0.0
        for _, amount in self._ledger:
            spent = spent + float(amount)
        self._spent = spent
        self._lock = threading.Lock()

    def __getstate__(self) -> Dict:
        state = dict(self.__dict__)
        del state["_lock"]  # locks are process-local and unpicklable
        return state

    def __setstate__(self, state: Dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    @property
    def spent(self) -> float:
        """Total ε charged so far — O(1), maintained under the spend lock."""
        return self._spent

    @property
    def remaining(self) -> float:
        return self.total_epsilon - self.spent

    @property
    def ledger(self) -> List[Tuple[str, float]]:
        """Copy of the (label, ε) charge history."""
        with self._lock:
            return list(self._ledger)

    def spend(self, label: str, epsilon: float) -> float:
        """Record an ε charge; returns the ε actually granted.

        Raises :class:`PrivacyBudgetError` (a :class:`ValueError`) when the
        charge would overdraw the budget by more than floating-point
        tolerance.  The check and the append happen under one lock, so
        racing spenders are granted at most the total budget between them.
        """
        if epsilon <= 0:
            raise ValueError("charges must be positive")
        with self._lock:
            if self._spent + epsilon > self.total_epsilon + _TOLERANCE:
                raise PrivacyBudgetError(
                    f"charge {label!r} of ε={epsilon:g} exceeds remaining "
                    f"budget {self.remaining:g} (total ε={self.total_epsilon:g})"
                )
            self._ledger.append((label, float(epsilon)))
            self._spent = self._spent + float(epsilon)
        return float(epsilon)

    #: Historical name for :meth:`spend`; kept for existing callers.
    charge = spend

    def unwind(self, count: int = 1) -> None:
        """Remove the ``count`` most recent charges (transactional rollback).

        For callers that must pair a charge with a second fallible effect
        (the serving ledger persists each grant to disk): when the effect
        fails *before any data was touched under the grant*, unwinding
        restores the ledger so the budget is not burned on a no-op.  Never
        use this after the granted budget paid for a data access — spent ε
        cannot be reclaimed.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        with self._lock:
            if count > len(self._ledger):
                raise ValueError(
                    f"cannot unwind {count} charges; ledger has "
                    f"{len(self._ledger)}"
                )
            del self._ledger[len(self._ledger) - count :]
            # Re-accumulate rather than subtract: float subtraction does
            # not exactly invert addition, and the running total must stay
            # bit-identical to a left-to-right sum of the ledger.
            spent = 0.0
            for _, amount in self._ledger:
                spent = spent + amount
            self._spent = spent

    def split(
        self, fractions: Sequence[float], remainder: bool = False
    ) -> Tuple[float, ...]:
        """Shares of this accountant's *total* budget (no spend recorded)."""
        return split_epsilon(self.total_epsilon, fractions, remainder)

    def assert_exhausted(self, tolerance: float = 1e-6) -> None:
        """Check that the whole budget was used (optional sanity check)."""
        if abs(self.remaining) > tolerance:
            raise PrivacyBudgetError(
                f"budget not exhausted: {self.remaining:g} of "
                f"{self.total_epsilon:g} remains"
            )
