"""Sequential-composition privacy budget accounting.

Differential privacy composes additively across sequential data accesses
(Section 3, "composability").  The accountant is a small ledger: algorithms
charge each access before touching the data, and the ledger refuses charges
that would exceed the total budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

_TOLERANCE = 1e-9


class PrivacyBudgetError(RuntimeError):
    """Raised when a charge would exceed the remaining privacy budget."""


@dataclass
class PrivacyAccountant:
    """Ledger of ε spend under sequential composition.

    Parameters
    ----------
    total_epsilon:
        The end-to-end budget.  Charges accumulate; exceeding the total
        (beyond a tiny float tolerance) raises :class:`PrivacyBudgetError`.
    """

    total_epsilon: float
    _ledger: List[Tuple[str, float]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.total_epsilon <= 0:
            raise ValueError("total_epsilon must be positive")

    @property
    def spent(self) -> float:
        return sum(amount for _, amount in self._ledger)

    @property
    def remaining(self) -> float:
        return self.total_epsilon - self.spent

    @property
    def ledger(self) -> List[Tuple[str, float]]:
        """Copy of the (label, ε) charge history."""
        return list(self._ledger)

    def charge(self, label: str, epsilon: float) -> float:
        """Record an ε charge; returns the ε actually granted.

        Raises :class:`PrivacyBudgetError` when the charge would overdraw
        the budget by more than floating-point tolerance.
        """
        if epsilon <= 0:
            raise ValueError("charges must be positive")
        if self.spent + epsilon > self.total_epsilon + _TOLERANCE:
            raise PrivacyBudgetError(
                f"charge {label!r} of ε={epsilon:g} exceeds remaining "
                f"budget {self.remaining:g} (total ε={self.total_epsilon:g})"
            )
        self._ledger.append((label, float(epsilon)))
        return float(epsilon)

    def assert_exhausted(self, tolerance: float = 1e-6) -> None:
        """Check that the whole budget was used (optional sanity check)."""
        if abs(self.remaining) > tolerance:
            raise PrivacyBudgetError(
                f"budget not exhausted: {self.remaining:g} of "
                f"{self.total_epsilon:g} remains"
            )
