"""The Laplace and exponential mechanisms (Section 2.1)."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np


def laplace_scale(sensitivity: float, epsilon: float) -> float:
    """The Laplace-mechanism noise scale ``b = sensitivity / epsilon``.

    The single sanctioned place to derive a noise scale from a budget:
    static-analysis rule PRIV002 requires every noise call's scale
    expression to flow through a sensitivity helper, so calibration errors
    (wrong sensitivity, raw ε arithmetic) stay greppable in one module.
    """
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    if sensitivity < 0:
        raise ValueError("sensitivity must be non-negative")
    return sensitivity / epsilon


def laplace_noise(
    scale: float, size, rng: np.random.Generator
) -> np.ndarray:
    """Draw i.i.d. ``Lap(scale)`` noise (pdf ``exp(-|x|/scale) / (2 scale)``)."""
    if scale < 0:
        raise ValueError("Laplace scale must be non-negative")
    if scale == 0:
        return np.zeros(size)
    return rng.laplace(loc=0.0, scale=scale, size=size)


def laplace_mechanism(
    values: np.ndarray,
    sensitivity: float,
    epsilon: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """ε-DP release of a numeric vector with the given L1 sensitivity.

    Adds ``Lap(sensitivity / epsilon)`` noise to every entry (Definition 2.2
    and the surrounding discussion).
    """
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    if sensitivity < 0:
        raise ValueError("sensitivity must be non-negative")
    values = np.asarray(values, dtype=float)
    return values + laplace_noise(
        laplace_scale(sensitivity, epsilon), values.shape, rng
    )


def exponential_mechanism(
    scores: Sequence[float],
    sensitivity: float,
    epsilon: float,
    rng: np.random.Generator,
    probabilities_out: Optional[list] = None,
) -> int:
    """ε-DP selection of an index with probability ∝ exp(score / 2Δ).

    ``Δ = sensitivity / epsilon`` is the scaling factor of Section 2.1.
    Scores are shifted by their maximum before exponentiation for numerical
    stability (the mechanism is invariant to constant shifts).

    Parameters
    ----------
    probabilities_out:
        Optional list; when given, the normalized sampling probabilities are
        appended to it (used by tests to check the sampling distribution).
    """
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    if sensitivity < 0:
        raise ValueError("sensitivity must be non-negative")
    scores = np.asarray(scores, dtype=float)
    if scores.ndim != 1 or scores.size == 0:
        raise ValueError("need a non-empty 1-D score array")
    if sensitivity == 0:
        # Scores are data-independent: pick the argmax deterministically.
        probabilities = np.zeros_like(scores)
        probabilities[int(np.argmax(scores))] = 1.0
    else:
        delta = sensitivity / epsilon
        shifted = (scores - scores.max()) / (2.0 * delta)
        weights = np.exp(shifted)
        probabilities = weights / weights.sum()
    if probabilities_out is not None:
        probabilities_out.append(probabilities)
    return int(rng.choice(scores.size, p=probabilities))
