"""Command-line release tool: ``python -m repro``.

Turns a CSV file into an ε-differentially private synthetic CSV::

    python -m repro --input census.csv --output synthetic.csv --epsilon 1.0

Options cover the paper's tunables (β, θ, encoding method), model
persistence (store a fitted model, resample later at no privacy cost) and
a utility report comparing the release to its source.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.core.privbayes import DEFAULT_BETA, DEFAULT_THETA
from repro.core.serialize import load_model, save_model
from repro.core.sampler import sample_synthetic
from repro.data.io import read_csv, write_csv
from repro.encoding import make_encoder
from repro.metrics import utility_report
from repro.release import METHODS, parse_method
from repro.core.privbayes import PrivBayes


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="PrivBayes: differentially private synthetic data release.",
    )
    parser.add_argument("--input", help="input CSV (headed)")
    parser.add_argument("--output", help="output CSV for the synthetic data")
    parser.add_argument(
        "--epsilon", type=float, default=1.0, help="total privacy budget"
    )
    parser.add_argument("--beta", type=float, default=DEFAULT_BETA)
    parser.add_argument("--theta", type=float, default=DEFAULT_THETA)
    parser.add_argument(
        "--method",
        default="hierarchical-R",
        choices=sorted(METHODS),
        help="encoding/score method (Section 6.3 names)",
    )
    parser.add_argument(
        "--rows", type=int, default=None, help="synthetic rows (default: input size)"
    )
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument(
        "--save-model", help="also store the fitted model as JSON"
    )
    parser.add_argument(
        "--from-model",
        help="skip fitting: resample from a stored model (no privacy cost)",
    )
    parser.add_argument(
        "--report",
        action="store_true",
        help="print a utility report (requires --input)",
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    rng = np.random.default_rng(args.seed)

    if args.from_model:
        if not args.output:
            print("error: --output is required", file=sys.stderr)
            return 2
        model, attributes = load_model(args.from_model)
        rows = args.rows if args.rows is not None else 1000
        synthetic = sample_synthetic(model, attributes, rows, rng)
        write_csv(synthetic, args.output)
        print(f"resampled {synthetic.n} rows from {args.from_model} -> {args.output}")
        return 0

    if not args.input or not args.output:
        print("error: --input and --output are required", file=sys.stderr)
        return 2
    table = read_csv(args.input)
    print(f"loaded {args.input}: n={table.n}, d={table.d}")
    encoding, score = parse_method(args.method)
    encoder = make_encoder(encoding)
    encoded = encoder.encode(table)
    pipeline = PrivBayes(
        epsilon=args.epsilon,
        beta=args.beta,
        theta=args.theta,
        score=score,
        generalize=encoder.uses_generalization,
    )
    model = pipeline.fit(encoded, rng=rng)
    synthetic_encoded = model.sample(args.rows, rng)
    synthetic = encoder.decode(synthetic_encoded)
    write_csv(synthetic, args.output)
    print(
        f"released {synthetic.n} rows at ε={args.epsilon} "
        f"({args.method}) -> {args.output}"
    )
    if args.save_model:
        save_model(model.noisy, encoded.attributes, args.save_model)
        print(f"model stored -> {args.save_model}")
    if args.report:
        print()
        print(utility_report(table, synthetic, max_pairs=50).render())
    return 0


if __name__ == "__main__":
    sys.exit(main())
