"""Post-processing of released marginals (free under differential privacy).

Footnote 1 of the paper: "we could apply additional post-processing of
distributions, in the spirit of [2, 17, 27], to reflect the fact that
lower degree distributions should be consistent".  This package implements
those steps: non-negativity + normalization (used throughout the paper's
baselines) and mutual consistency of overlapping marginals.
"""

from repro.postprocess.consistency import (
    enforce_nonnegativity,
    mutually_consistent_marginals,
)

__all__ = ["enforce_nonnegativity", "mutually_consistent_marginals"]
