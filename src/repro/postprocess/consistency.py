"""Consistency post-processing for collections of released marginals.

Two layers, both pure post-processing (no privacy cost):

* :func:`enforce_nonnegativity` — clip negatives to zero and renormalize
  each marginal to unit mass (the paper's baseline treatment).
* :func:`mutually_consistent_marginals` — make overlapping marginals agree
  on their shared sub-marginals, in the spirit of Barak et al. / Hay
  et al. / Ding et al. (references [2, 17, 27]): for every attribute
  subset shared by two or more released marginals, compute the average of
  their projections onto it and additively shift each marginal to match,
  then re-apply non-negativity.  Iterated a few rounds, this converges to
  a family whose shared projections agree to tolerance.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.data.marginals import (
    domain_size,
    normalize_distribution,
    project_distribution,
)

Marginals = Dict[Tuple[str, ...], np.ndarray]


def enforce_nonnegativity(released: Marginals) -> Marginals:
    """Clip negatives and renormalize every marginal (paper baselines)."""
    return {
        names: normalize_distribution(dist) for names, dist in released.items()
    }


def _shared_subsets(released: Marginals) -> List[Tuple[str, ...]]:
    """Attribute subsets shared by at least two released marginals."""
    seen: Dict[Tuple[str, ...], int] = {}
    for names in released:
        for r in range(1, len(names)):
            for combo in itertools.combinations(sorted(names), r):
                seen[combo] = seen.get(combo, 0) + 1
    return [combo for combo, count in seen.items() if count >= 2]


def _projection(
    names: Tuple[str, ...],
    sizes: List[int],
    dist: np.ndarray,
    subset: Tuple[str, ...],
) -> np.ndarray:
    keep = [names.index(name) for name in subset]
    return project_distribution(dist, sizes, keep)


def mutually_consistent_marginals(
    released: Marginals,
    attribute_sizes: Dict[str, int],
    rounds: int = 3,
) -> Marginals:
    """Average-and-adjust consistency across overlapping marginals.

    For each shared subset ``S``: compute the mean of all projections onto
    ``S``; for each marginal containing ``S``, add the (broadcast)
    correction ``(mean - own projection) / |dom(rest)|`` so its projection
    matches the mean exactly — the minimal L2 adjustment, as in the
    consistency step of Barak et al.  Negativity introduced by the shifts
    is clipped at the end of each round.
    """
    if rounds < 1:
        raise ValueError("rounds must be positive")
    current = {names: np.asarray(dist, dtype=float).copy()
               for names, dist in released.items()}
    shared = _shared_subsets(current)
    for _ in range(rounds):
        for subset in shared:
            holders = [names for names in current if set(subset) <= set(names)]
            if len(holders) < 2:
                continue
            subset_sizes = [attribute_sizes[name] for name in subset]
            projections = {}
            for names in holders:
                sizes = [attribute_sizes[name] for name in names]
                projections[names] = _projection(
                    names, sizes, current[names], subset
                )
            mean = np.mean([projections[names] for names in holders], axis=0)
            for names in holders:
                sizes = [attribute_sizes[name] for name in names]
                rest = domain_size(sizes) // domain_size(subset_sizes)
                correction = (mean - projections[names]) / rest
                # Broadcast the correction across the non-subset axes:
                # reorder its axes to ascending marginal-axis position and
                # reshape with singleton axes elsewhere.
                axes = [names.index(name) for name in subset]
                ascending = sorted(range(len(axes)), key=lambda i: axes[i])
                corr_sorted = np.transpose(
                    correction.reshape(subset_sizes), ascending
                )
                view_shape = [1] * len(sizes)
                for i in sorted(axes):
                    view_shape[i] = sizes[i]
                grid = current[names].reshape(sizes) + corr_sorted.reshape(
                    view_shape
                )
                current[names] = grid.reshape(-1)
        current = enforce_nonnegativity(current)
    return current


def consistency_error(
    released: Marginals, attribute_sizes: Dict[str, int]
) -> float:
    """Max L1 disagreement between shared projections (0 = consistent)."""
    worst = 0.0
    for subset in _shared_subsets(released):
        holders = [names for names in released if set(subset) <= set(names)]
        if len(holders) < 2:
            continue
        projections = []
        for names in holders:
            sizes = [attribute_sizes[name] for name in names]
            projections.append(
                _projection(names, sizes, released[names], subset)
            )
        for a, b in itertools.combinations(projections, 2):
            worst = max(worst, float(np.abs(a - b).sum()))
    return worst
