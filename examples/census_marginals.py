"""Releasing census data for count-query workloads (the Figure 14 scenario).

A statistics bureau wants to publish Adult-like census data so that
analysts can evaluate arbitrary 2-way count queries.  This example
releases the data with PrivBayes and with the direct Laplace baseline at
several privacy budgets, and reports the average total-variation distance
over the Q2 workload — the exact protocol of Section 6.5.

Run with::

    python examples/census_marginals.py
"""

import numpy as np

from repro.baselines import LaplaceMarginals, UniformMarginals
from repro.datasets import load_adult
from repro.release import release_synthetic
from repro.workloads import (
    all_alpha_marginals,
    average_variation_distance,
    synthetic_marginals,
)


def main() -> None:
    table = load_adult(n=10_000, seed=3)
    workload = all_alpha_marginals(table, 2)
    print(f"workload: all {len(workload)} two-way marginals of Adult")

    epsilons = (0.1, 0.4, 1.6)
    print(f"\n{'epsilon':<10}{'PrivBayes':>12}{'Laplace':>12}{'Uniform':>12}")
    for epsilon in epsilons:
        rng = np.random.default_rng(11)
        synthetic = release_synthetic(
            table, epsilon, method="hierarchical-R", rng=rng
        )
        privbayes_err = average_variation_distance(
            table, synthetic_marginals(synthetic, workload), workload
        )
        laplace_err = average_variation_distance(
            table,
            LaplaceMarginals().release(table, workload, epsilon, rng),
            workload,
        )
        uniform_err = average_variation_distance(
            table,
            UniformMarginals().release(table, workload, epsilon, rng),
            workload,
        )
        print(
            f"{epsilon:<10}{privbayes_err:>12.4f}{laplace_err:>12.4f}"
            f"{uniform_err:>12.4f}"
        )
    print(
        "\nPrivBayes splits its budget over d low-dimensional marginals "
        "once;\nLaplace must split over all C(d,2) workload marginals, so "
        "it degrades\nfaster as the budget shrinks or the workload grows."
    )


if __name__ == "__main__":
    main()
