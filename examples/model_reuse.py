"""Fit once, reuse forever: model persistence and direct inference.

Everything derived from a fitted PrivBayes model is free post-processing
under differential privacy.  This example fits one model on BR2000, then:

1. stores it as JSON and reloads it;
2. resamples synthetic datasets of several sizes from the stored model;
3. answers marginal queries *directly* from the model by exact variable
   elimination (the paper's concluding-remarks direction) and shows that
   this beats the sampled answers;
4. evaluates range-count queries on the release.

Run with::

    python examples/model_reuse.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.bn.inference import model_marginals
from repro.core.privbayes import PrivBayes
from repro.core.sampler import sample_synthetic
from repro.core.serialize import load_model, save_model
from repro.datasets import load_br2000
from repro.workloads import (
    all_alpha_marginals,
    average_variation_distance,
    synthetic_marginals,
)
from repro.workloads.range_queries import (
    average_range_error,
    random_range_queries,
)


def main() -> None:
    rng = np.random.default_rng(17)
    table = load_br2000(n=10_000, seed=17)
    epsilon = 0.8

    print(f"fitting PrivBayes at ε = {epsilon} on BR2000 (n={table.n})")
    fitted = PrivBayes(epsilon=epsilon, generalize=True).fit(table, rng=rng)
    print(f"learned network degree: {fitted.network.degree}")

    # --- 1. persistence round trip ------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "br2000-release.json"
        save_model(fitted.noisy, table.attributes, path)
        restored, attributes = load_model(path)
        print(f"model stored and reloaded ({path.stat().st_size} bytes)")

        # --- 2. resampling at several sizes (no extra privacy cost) ----
        workload = all_alpha_marginals(table, 2)[:40]
        print("\nsampled-answer error vs synthetic size (Q2, 40 marginals):")
        for rows in (500, 5_000, 50_000):
            synthetic = sample_synthetic(restored, attributes, rows, rng)
            err = average_variation_distance(
                table, synthetic_marginals(synthetic, workload), workload
            )
            print(f"  {rows:>7} rows: {err:.4f}")

        # --- 3. direct model inference ---------------------------------
        inferred = model_marginals(restored, attributes, workload)
        err = average_variation_distance(table, inferred, workload)
        print(f"  model-based (exact inference): {err:.4f}")
        print("  -> inference removes the sampling-noise term entirely")

        # --- 4. range queries on a standard-size release ----------------
        synthetic = sample_synthetic(restored, attributes, table.n, rng)
        queries = random_range_queries(table, 30, dimensions=2, rng=rng)
        range_err = average_range_error(table, synthetic, queries)
        print(f"\nmean |fraction error| over 30 random 2-D range queries: "
              f"{range_err:.4f}")


if __name__ == "__main__":
    main()
