"""Tour of the four attribute encodings (Section 5.1, Figures 2-3).

Shows how one categorical attribute looks under each encoding, then
compares the end-to-end utility of the four ``<Encoding>-<Score>`` methods
on BR2000 two-way marginals — the Figure 6 protocol in miniature.

Run with::

    python examples/encoding_tour.py
"""

import numpy as np

from repro.datasets import load_br2000
from repro.encoding import make_encoder
from repro.release import METHODS, release_synthetic
from repro.workloads import (
    all_alpha_marginals,
    average_variation_distance,
    synthetic_marginals,
)


def show_encodings(table) -> None:
    attr = table.attribute("religion")
    print(f"attribute {attr.name!r}: {attr.size} values")
    print("  vanilla      : kept whole:", ", ".join(attr.values[:4]), "...")
    print(
        "  hierarchical : taxonomy levels:",
        " -> ".join(
            f"{attr.taxonomy.level_size(i)} values"
            for i in range(attr.taxonomy.height)
        ),
    )
    encoded = make_encoder("binary").encode(table.project(["religion"]))
    print(f"  binary/gray  : split into {encoded.d} bit attributes:",
          ", ".join(encoded.attribute_names))


def main() -> None:
    table = load_br2000(n=8_000, seed=5)
    show_encodings(table)

    workload = all_alpha_marginals(table, 2)
    epsilon = 0.2
    print(f"\nQ2 average variation distance at ε = {epsilon}:")
    for method in METHODS:
        rng = np.random.default_rng(31)
        synthetic = release_synthetic(table, epsilon, method=method, rng=rng)
        err = average_variation_distance(
            table, synthetic_marginals(synthetic, workload), workload
        )
        print(f"  {method:<16} {err:.4f}")
    print(
        "\nAt small ε the bitwise encodings pay for their redundant bit "
        "attributes;\nvanilla/hierarchical keep attribute semantics intact "
        "(Section 6.3)."
    )


if __name__ == "__main__":
    main()
