"""Training classifiers on privately released health data (Figure 16).

The NLTCS disability survey is sensitive health data.  This example
releases it with PrivBayes, trains SVM classifiers for all four Section
6.1 prediction tasks on the *synthetic* data, and evaluates them on real
held-out rows — the key property being that one release supports many
downstream analyses without extra privacy cost.

Run with::

    python examples/disability_classifier.py
"""

import numpy as np

from repro.core.privbayes import PrivBayes
from repro.datasets import load_nltcs
from repro.svm import LinearSVM, featurize, misclassification_rate
from repro.workloads import tasks_for


def main() -> None:
    rng = np.random.default_rng(23)
    table = load_nltcs(n=12_000, seed=23)
    train, test = table.split(0.8, rng)
    print(f"train: {train.n} rows, test: {test.n} rows")

    epsilon = 1.0
    synthetic = PrivBayes(epsilon=epsilon, score="F", mode="binary").fit_sample(
        train, rng=rng
    )
    print(f"released one synthetic dataset at ε = {epsilon}\n")

    header = f"{'task':<18}{'NoPrivacy':>12}{'PrivBayes':>12}{'Majority':>12}"
    print(header)
    for task in tasks_for("nltcs", table):
        X_train, y_train = featurize(train, task)
        X_test, y_test = featurize(test, task)
        X_syn, y_syn = featurize(synthetic, task)

        floor = misclassification_rate(
            LinearSVM().fit(X_train, y_train), X_test, y_test
        )
        private = misclassification_rate(
            LinearSVM().fit(X_syn, y_syn), X_test, y_test
        )
        majority = min((y_test > 0).mean(), (y_test < 0).mean())
        print(f"{task.name:<18}{floor:>12.3f}{private:>12.3f}{majority:>12.3f}")

    print(
        "\nAll four classifiers came from the SAME ε-DP release — "
        "comparators like\nPrivateERM would have had to split ε across the "
        "four tasks (Section 6.6)."
    )


if __name__ == "__main__":
    main()
