"""Quickstart: release a differentially private synthetic dataset.

Loads a (generated) Adult census table, runs PrivBayes with a total budget
of ε = 1.0, and checks how well a couple of low-dimensional statistics
survive the release.

Run with::

    python examples/quickstart.py
"""

import numpy as np

from repro import PrivBayes
from repro.datasets import load_adult
from repro.data.marginals import joint_distribution
from repro.infotheory.measures import total_variation_distance


def main() -> None:
    rng = np.random.default_rng(7)

    # The sensitive input: 10,000 census rows (schema-faithful generator).
    table = load_adult(n=10_000, seed=7)
    print(f"input: n={table.n}, d={table.d} attributes")
    print(f"attributes: {', '.join(table.attribute_names)}")

    # One call: learn a private Bayesian network, learn noisy conditionals,
    # sample a synthetic table of the same size and schema.
    pipeline = PrivBayes(epsilon=1.0)  # beta=0.3, theta=4 (paper defaults)
    synthetic = pipeline.fit_sample(table, rng=rng)
    print(f"\nsynthetic release: n={synthetic.n} rows, same schema")
    print("first rows:", *synthetic.decoded_records(limit=2), sep="\n  ")

    # How much utility survived?  Compare a few one- and two-way marginals.
    print("\ntotal variation distance (true vs synthetic marginal):")
    for names in [("sex",), ("salary",), ("education", "salary"),
                  ("age", "marital_status")]:
        truth = joint_distribution(table, list(names))
        released = joint_distribution(synthetic, list(names))
        tvd = total_variation_distance(truth, released)
        print(f"  {' x '.join(names):<28} {tvd:.4f}")

    # The ledger shows where the ε went (Theorem 3.2: it sums to ε).
    model = pipeline.fit(table, rng=rng)
    print("\nprivacy ledger (one fit):")
    for label, amount in model.accountant.ledger[:5]:
        print(f"  {label:<45} ε={amount:.4f}")
    print(f"  ... total spent: ε={model.accountant.spent:.4f}")


if __name__ == "__main__":
    main()
