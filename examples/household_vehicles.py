"""Two-table release: households and their vehicles (Section 7 extension).

The paper's concluding remarks name multi-table schemas as the natural
next step, warning that an individual's impact — and hence the noise —
grows with their fan-out.  This example releases a household table linked
to a vehicles table under one end-to-end ε, showing the three budget
components (primary model, fanout histogram, group-privacy-scaled child
model) and the utility that survives.

Run with::

    python examples/household_vehicles.py
"""

import numpy as np

from repro.data.attribute import Attribute, discretize_continuous
from repro.data.table import Table
from repro.infotheory.measures import mutual_information_from_table
from repro.metrics import utility_report
from repro.multitable import LinkedTables, release_two_tables


def build_linked(n_households: int, seed: int) -> LinkedTables:
    """Synthetic household census: income drives vehicle count and kind."""
    rng = np.random.default_rng(seed)
    region = rng.integers(0, 4, n_households)
    income = np.exp(rng.normal(10.0 + 0.2 * (region == 0), 0.6, n_households))
    income_attr, income_codes = discretize_continuous(
        "income", income, low=0, high=120_000
    )
    urban = (rng.random(n_households) < 0.7).astype(np.int64)
    households = Table(
        [
            Attribute("region", ("north", "east", "south", "west")),
            income_attr,
            Attribute.binary("urban"),
        ],
        {"region": region, "income": income_codes, "urban": urban},
    )
    rate = np.clip(0.2 + income / 60_000 - 0.3 * urban, 0.05, 3.5)
    fanout = rng.poisson(rate)
    owners = np.repeat(np.arange(n_households), fanout)
    total = owners.size
    owner_income = income[owners]
    kind = np.where(
        rng.random(total) < np.clip(owner_income / 90_000, 0.05, 0.9),
        2,  # suv
        np.where(rng.random(total) < 0.75, 1, 0),  # sedan | motorbike
    ).astype(np.int64)
    age = np.minimum(rng.poisson(9 - 4 * (owner_income > 50_000)), 15)
    vehicles = Table(
        [
            Attribute("kind", ("motorbike", "sedan", "suv")),
            Attribute("age_years", tuple(str(y) for y in range(16))),
        ],
        {"kind": kind, "age_years": age},
    )
    return LinkedTables(households, vehicles, owners)


def main() -> None:
    rng = np.random.default_rng(41)
    linked = build_linked(8_000, seed=41)
    print(
        f"input: {linked.n_individuals} households, "
        f"{linked.n_child_rows} vehicles, max fanout {linked.max_fanout()}"
    )

    epsilon = 2.0
    max_fanout = 4
    release = release_two_tables(
        linked, epsilon, max_fanout=max_fanout, rng=rng
    )
    print(f"\nreleased at end-to-end ε = {epsilon} (fanout bound {max_fanout}):")
    for label, amount in release.accountant.ledger:
        print(f"  {label:<55} ε={amount:.3f}")

    synthetic = release.sample(rng=rng)
    print(
        f"\nsynthetic: {synthetic.n_individuals} households, "
        f"{synthetic.n_child_rows} vehicles"
    )
    true_mean = linked.truncate(max_fanout).fanout_counts().mean()
    print(
        f"mean vehicles/household: true(truncated)={true_mean:.3f} "
        f"synthetic={synthetic.fanout_counts().mean():.3f}"
    )

    print("\nhousehold-table utility:")
    print(utility_report(linked.primary, synthetic.primary).render())

    mi_true = mutual_information_from_table(linked.child, "age_years", ["kind"])
    mi_syn = mutual_information_from_table(synthetic.child, "age_years", ["kind"])
    print(
        f"\nvehicle kind/age correlation: I={mi_true:.3f} (true) vs "
        f"I={mi_syn:.3f} (synthetic)\n"
        "note the child model pays a 1/max_fanout budget factor — the "
        "noise growth\nthe paper's Section 7 warns about, made explicit."
    )


if __name__ == "__main__":
    main()
